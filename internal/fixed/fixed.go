// Package fixed provides the fixed-point arithmetic the hardware
// pipelines compute in: the PL has no floating-point units, so the
// HOG descriptor, block normalization and SVM dot product of Fig. 2
// are Q-format datapaths. The package supplies Q16.16 scalar
// arithmetic, saturating conversions, an integer square root (for the
// L2 normalizer), and quantized HOG/SVM evaluation paths used by the
// quantization-loss benchmarks.
//
// This package is the boundary of the float world: everything inside
// the PL computes in Q16.16 through the saturating methods below, and
// advdetlint's fixedops analyzer rejects raw operator arithmetic on Q
// everywhere else in the module. Float conversions live only in the
// explicitly annotated helpers.
//
// lint:datapath
package fixed

import (
	"fmt"
	"math"
)

// Q is a Q16.16 fixed-point number: 1 sign bit, 15 integer bits, 16
// fractional bits, stored in int32.
type Q int32

// One is the Q16.16 representation of 1.0.
const One Q = 1 << 16

// FracBits is the number of fractional bits.
const FracBits = 16

// FromFloat converts with saturation to the representable range.
//
// lint:allowfloat float/fixed conversion boundary (runs on the PS)
func FromFloat(f float64) Q {
	v := math.Round(f * float64(One))
	if v > math.MaxInt32 {
		return Q(math.MaxInt32)
	}
	if v < math.MinInt32 {
		return Q(math.MinInt32)
	}
	return Q(v)
}

// Float converts back to float64.
//
// lint:allowfloat float/fixed conversion boundary (runs on the PS)
func (q Q) Float() float64 { return float64(q) / float64(One) }

// Mul multiplies with a 64-bit intermediate, round-half-even rescale
// and saturation. Rounding to nearest (ties to even) instead of
// truncating keeps the rescale bias-free: an arithmetic shift always
// rounds toward minus infinity, so a chain of truncating multiplies
// drifts low by up to half an LSB per operation — a systematic bias
// that accumulates across the bw x bh blocks of a quantized window
// margin and pushes near-threshold windows across the decision
// boundary. DSP48 accumulator chains round once, convergently, at the
// output stage; so does this.
func (q Q) Mul(r Q) Q {
	p := RoundShiftI64(int64(q)*int64(r), FracBits)
	if p > math.MaxInt32 {
		return Q(math.MaxInt32)
	}
	if p < math.MinInt32 {
		return Q(math.MinInt32)
	}
	return Q(p)
}

// Div divides with a 64-bit intermediate; division by zero saturates
// to the sign-appropriate extreme, matching the RTL divider's
// saturation behaviour.
func (q Q) Div(r Q) Q {
	if r == 0 {
		if q >= 0 {
			return Q(math.MaxInt32)
		}
		return Q(math.MinInt32)
	}
	p := (int64(q) << FracBits) / int64(r)
	if p > math.MaxInt32 {
		return Q(math.MaxInt32)
	}
	if p < math.MinInt32 {
		return Q(math.MinInt32)
	}
	return Q(p)
}

// Add adds with saturation.
func (q Q) Add(r Q) Q {
	s := int64(q) + int64(r)
	if s > math.MaxInt32 {
		return Q(math.MaxInt32)
	}
	if s < math.MinInt32 {
		return Q(math.MinInt32)
	}
	return Q(s)
}

// Sub subtracts with saturation.
func (q Q) Sub(r Q) Q {
	s := int64(q) - int64(r)
	if s > math.MaxInt32 {
		return Q(math.MaxInt32)
	}
	if s < math.MinInt32 {
		return Q(math.MinInt32)
	}
	return Q(s)
}

// Neg returns -q with saturation: the RTL's two's-complement negate
// clamps the one asymmetric case, -MinInt32, to MaxInt32.
func (q Q) Neg() Q {
	if int32(q) == math.MinInt32 {
		return Q(math.MaxInt32)
	}
	return -q
}

// String formats q as its float value for logs and tests.
//
// lint:allowfloat reporting helper (runs on the PS)
func (q Q) String() string { return fmt.Sprintf("%g", q.Float()) }

// Sqrt32 returns the integer square root of v (floor), the shift-and-
// subtract circuit the L2-Hys normalizer instantiates.
func Sqrt32(v uint32) uint32 {
	var res uint32
	bit := uint32(1) << 30
	for bit > v {
		bit >>= 2
	}
	for bit != 0 {
		if v >= res+bit {
			v -= res + bit
			res = res>>1 + bit
		} else {
			res >>= 1
		}
		bit >>= 2
	}
	return res
}

// SqrtQ returns the Q16.16 square root of a non-negative Q value.
// Negative inputs return 0 (the RTL clamps them).
func SqrtQ(q Q) Q {
	if q <= 0 {
		return 0
	}
	// sqrt(x * 2^16) in integer domain = sqrt(x) * 2^8 * sqrt(2^0)...
	// compute over a 64-bit widened value to keep precision:
	// sqrt(q * 2^16) yields Q16.16 of sqrt(v).
	wide := uint64(q) << FracBits
	// Integer sqrt of a 48-bit value via Newton iterations seeded by
	// the 32-bit circuit.
	x := uint64(Sqrt32(uint32(wide>>16))) << 8
	if x == 0 {
		x = 1
	}
	for i := 0; i < 4; i++ {
		x = (x + wide/x) / 2
	}
	// Floor-correct.
	for x*x > wide {
		x--
	}
	for (x+1)*(x+1) <= wide {
		x++
	}
	return Q(x)
}

// Vector helpers for the quantized datapaths.

// QuantizeVec converts a float vector to Q16.16.
//
// lint:allowfloat float/fixed conversion boundary (runs on the PS)
func QuantizeVec(v []float64) []Q {
	out := make([]Q, len(v))
	for i, f := range v {
		out[i] = FromFloat(f)
	}
	return out
}

// DequantizeVec converts back to float64.
//
// lint:allowfloat float/fixed conversion boundary (runs on the PS)
func DequantizeVec(v []Q) []float64 {
	out := make([]float64, len(v))
	for i, q := range v {
		out[i] = q.Float()
	}
	return out
}

// Dot computes a fixed-point dot product the way the DSP48 cascade
// does: raw Q32.32 products accumulate at full width in the wide
// accumulator and are rescaled to Q16.16 once at the end — with a
// round-half-even final shift (see Mul), so the single rescale is
// bias-free too and no per-term truncation error accumulates.
func Dot(a, b []Q) Q {
	if len(a) != len(b) {
		// lint:invariant feature and weight vectors are sized by the same HOG config
		panic(fmt.Sprintf("fixed: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var acc int64 // Q32.32
	for i := range a {
		acc += int64(a[i]) * int64(b[i])
	}
	acc = RoundShiftI64(acc, FracBits)
	if acc > math.MaxInt32 {
		return Q(math.MaxInt32)
	}
	if acc < math.MinInt32 {
		return Q(math.MinInt32)
	}
	return Q(acc)
}

// L2NormalizeQ normalizes v in place to (near) unit L2 norm with
// clipping, the fixed-point version of the software l2hys: values are
// divided by sqrt(sum of squares + eps) and clipped at clip, then
// renormalized once.
func L2NormalizeQ(v []Q, clip Q) {
	norm := func() Q {
		var acc int64
		for _, x := range v {
			acc += (int64(x) * int64(x)) >> FracBits
		}
		if acc > math.MaxInt32 {
			acc = math.MaxInt32
		}
		return SqrtQ(Q(acc))
	}
	n := norm()
	if n == 0 {
		return
	}
	for i := range v {
		v[i] = v[i].Div(n)
		if v[i] > clip {
			v[i] = clip
		} else if v[i] < -clip {
			v[i] = -clip
		}
	}
	n = norm()
	if n == 0 {
		return
	}
	for i := range v {
		v[i] = v[i].Div(n)
	}
}
