package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 0.5, -0.25, 123.456, -999.999} {
		q := FromFloat(f)
		if d := math.Abs(q.Float() - f); d > 1.0/(1<<16) {
			t.Errorf("round trip of %v drifted by %v", f, d)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(1e12) != Q(math.MaxInt32) {
		t.Fatal("positive overflow did not saturate")
	}
	if FromFloat(-1e12) != Q(math.MinInt32) {
		t.Fatal("negative overflow did not saturate")
	}
}

func TestMulDivAdd(t *testing.T) {
	a, b := FromFloat(3.5), FromFloat(2.0)
	if got := a.Mul(b).Float(); math.Abs(got-7) > 1e-4 {
		t.Fatalf("3.5*2 = %v", got)
	}
	if got := a.Div(b).Float(); math.Abs(got-1.75) > 1e-4 {
		t.Fatalf("3.5/2 = %v", got)
	}
	if got := a.Add(b).Float(); math.Abs(got-5.5) > 1e-4 {
		t.Fatalf("3.5+2 = %v", got)
	}
}

func TestDivByZeroSaturates(t *testing.T) {
	if FromFloat(1).Div(0) != Q(math.MaxInt32) {
		t.Fatal("positive/0 should saturate high")
	}
	if FromFloat(-1).Div(0) != Q(math.MinInt32) {
		t.Fatal("negative/0 should saturate low")
	}
}

func TestArithmeticMatchesFloatProperty(t *testing.T) {
	f := func(a, b int16) bool {
		// Scale inputs so products stay inside Q16.16 (no saturation).
		fa, fb := float64(a)/256, float64(b)/256
		qa, qb := FromFloat(fa), FromFloat(fb)
		if math.Abs(qa.Mul(qb).Float()-fa*fb) > 0.01 {
			return false
		}
		if math.Abs(qa.Add(qb).Float()-(fa+fb)) > 0.001 {
			return false
		}
		if fb != 0 && math.Abs(fa/fb) < 30000 {
			if math.Abs(qa.Div(qb).Float()-fa/fb) > 0.01*math.Max(1, math.Abs(fa/fb)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSqrt32Exact(t *testing.T) {
	cases := map[uint32]uint32{0: 0, 1: 1, 4: 2, 15: 3, 16: 4, 1 << 30: 1 << 15, 4294836225: 65535}
	for v, want := range cases {
		if got := Sqrt32(v); got != want {
			t.Errorf("Sqrt32(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestSqrt32Property(t *testing.T) {
	f := func(v uint32) bool {
		r := uint64(Sqrt32(v))
		return r*r <= uint64(v) && (r+1)*(r+1) > uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSqrtQ(t *testing.T) {
	for _, f := range []float64{0, 1, 2, 4, 0.25, 100, 10000} {
		got := SqrtQ(FromFloat(f)).Float()
		if math.Abs(got-math.Sqrt(f)) > 0.001*math.Max(1, math.Sqrt(f)) {
			t.Errorf("SqrtQ(%v) = %v, want %v", f, got, math.Sqrt(f))
		}
	}
	if SqrtQ(FromFloat(-3)) != 0 {
		t.Fatal("negative sqrt should clamp to 0")
	}
}

func TestDotMatchesFloat(t *testing.T) {
	a := []float64{0.5, -0.25, 1.5, 2}
	b := []float64{1, 2, -0.5, 0.125}
	want := 0.0
	for i := range a {
		want += a[i] * b[i]
	}
	got := Dot(QuantizeVec(a), QuantizeVec(b)).Float()
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("Dot = %v, want %v", got, want)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Dot(make([]Q, 2), make([]Q, 3))
}

func TestQuantizeDequantizeVec(t *testing.T) {
	v := []float64{0.1, -0.9, 3.25}
	back := DequantizeVec(QuantizeVec(v))
	for i := range v {
		if math.Abs(back[i]-v[i]) > 1e-4 {
			t.Fatalf("vector round trip drifted at %d", i)
		}
	}
}

func TestL2NormalizeQUnitNorm(t *testing.T) {
	v := QuantizeVec([]float64{3, 4, 0, 0})
	L2NormalizeQ(v, FromFloat(1))
	var ss float64
	for _, q := range v {
		ss += q.Float() * q.Float()
	}
	if math.Abs(math.Sqrt(ss)-1) > 0.01 {
		t.Fatalf("norm after normalization = %v", math.Sqrt(ss))
	}
	if math.Abs(v[0].Float()-0.6) > 0.01 || math.Abs(v[1].Float()-0.8) > 0.01 {
		t.Fatalf("direction changed: %v %v", v[0], v[1])
	}
}

func TestL2NormalizeQClipping(t *testing.T) {
	v := QuantizeVec([]float64{10, 0.01, 0.01})
	clip := FromFloat(0.2)
	L2NormalizeQ(v, clip)
	// After clip+renormalize the dominant value is bounded near 1 but
	// the small values gained relative mass.
	if v[0].Float() > 1.01 {
		t.Fatalf("clipped value %v exceeds unit", v[0].Float())
	}
}

func TestL2NormalizeQZeroVector(t *testing.T) {
	v := make([]Q, 4)
	L2NormalizeQ(v, One) // must not panic or produce garbage
	for _, q := range v {
		if q != 0 {
			t.Fatal("zero vector changed")
		}
	}
}

func TestStringer(t *testing.T) {
	if FromFloat(1.5).String() != "1.5" {
		t.Fatalf("String = %q", FromFloat(1.5).String())
	}
}
