// Narrow-integer kernels of the quantized block-response datapath:
// int16 operand planes (the widths BRAM ports and DSP48 A/B inputs
// carry), int64 wide accumulation, one round-half-even rescale and
// int32 saturation — the same shape as the Q16.16 scalar ops, at the
// vector granularity the SVM window evaluators consume. Everything
// here is pure integer arithmetic; float conversions live only in the
// explicitly annotated quantization helpers at the bottom.
package fixed

import (
	"fmt"
	"math"
)

// RoundShiftI64 arithmetically shifts v right by shift bits, rounding
// to nearest with ties to even (convergent rounding — what a DSP48
// output stage with CARRYIN-based rounding implements). shift must be
// in [0, 62]. Unlike a bare >>, which floors and therefore biases a
// multiply-accumulate chain low by up to half an LSB per operation,
// round-half-even is bias-free in expectation and on tie sequences.
func RoundShiftI64(v int64, shift uint) int64 {
	if shift == 0 {
		return v
	}
	q := v >> shift
	half := int64(1) << (shift - 1)
	// v>>shift floors, so the masked remainder is the non-negative
	// fraction for negative v too.
	frac := v & (int64(1)<<shift - 1)
	if frac > half || (frac == half && q&1 != 0) {
		q++
	}
	return q
}

// SatI32 clamps a wide value into int32, the saturation stage every
// narrow write-back port of the datapath passes through.
func SatI32(v int64) int32 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return int32(v)
}

// AddSatI32 adds two int32 response-plane values with saturation
// instead of two's-complement wrap.
func AddSatI32(a, b int32) int32 {
	return SatI32(int64(a) + int64(b))
}

// DotI16 accumulates the widened products of two int16 vectors in an
// int64 accumulator — the DSP48 cascade: 16x16 multipliers feeding a
// wide adder tree, no intermediate rounding. Callers rescale the
// result once with RoundShiftI64.
func DotI16(a, b []int16) int64 {
	if len(a) != len(b) {
		// lint:invariant weight and block vectors are sized by the same HOG config
		panic(fmt.Sprintf("fixed: int16 dot length mismatch %d vs %d", len(a), len(b))) // lint:alloc cold panic path; fires only on an invariant violation
	}
	var acc int64
	for i, v := range a {
		acc += int64(v) * int64(b[i])
	}
	return acc
}

// BlockFracBits is the fractional width of quantized block-plane
// values: L2Hys-normalized block components lie in [0, 1], so Q1.14
// uses the int16 range fully with one bit to spare.
const BlockFracBits = 14

// RespFracBits is the fractional width of the int32 quantized
// response plane (margins and thresholds in Q15.16).
const RespFracBits = 16

// QuantizeQ14 converts a non-negative float plane (normalized HOG
// block components) to Q1.14 int16, rounding to nearest and clamping
// to the representable range. dst's backing array is reused when
// large enough; the returned slice has len(src).
//
// lint:allowfloat float/fixed conversion boundary (runs on the PS)
func QuantizeQ14(dst []int16, src []float64) []int16 {
	if cap(dst) < len(src) {
		dst = make([]int16, len(src)) // lint:alloc grows once to the high-water plane size, then reused across frames
	}
	dst = dst[:len(src)]
	for i, f := range src {
		v := math.Round(f * (1 << BlockFracBits))
		switch {
		case v < 0:
			dst[i] = 0
		case v > math.MaxInt16:
			dst[i] = math.MaxInt16
		default:
			dst[i] = int16(v)
		}
	}
	return dst
}
