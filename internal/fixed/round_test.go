package fixed

import (
	"math"
	"testing"
)

// TestRoundShiftI64HalfEven pins the convergent-rounding table,
// including the negative-tie cases where a floor-based shift and a
// round-half-away implementation both diverge.
func TestRoundShiftI64HalfEven(t *testing.T) {
	cases := []struct {
		v     int64
		shift uint
		want  int64
	}{
		{0, 4, 0},
		{7, 0, 7},
		{8, 4, 0},    // 0.5 -> even 0
		{24, 4, 2},   // 1.5 -> even 2
		{40, 4, 2},   // 2.5 -> even 2
		{9, 4, 1},    // just above the tie rounds up
		{23, 4, 1},   // just below the tie rounds down
		{-8, 4, 0},   // -0.5 -> even 0
		{-24, 4, -2}, // -1.5 -> even -2
		{-40, 4, -2}, // -2.5 -> even -2
		{-9, 4, -1},
		{-23, 4, -1},
		{math.MaxInt64 >> 1, 1, math.MaxInt64>>2 + 1}, // odd-quotient tie rounds up to even
	}
	for _, c := range cases {
		if got := RoundShiftI64(c.v, c.shift); got != c.want {
			t.Errorf("RoundShiftI64(%d, %d) = %d, want %d", c.v, c.shift, got, c.want)
		}
	}
}

// TestMulAccumulatedRoundingBias is the regression for the truncating
// rescale the Mul/Dot chain used to apply. Every product below lands
// exactly on a half-LSB tie, the worst case for any rounding mode:
// truncation loses 0.5 LSB on every term and the accumulated margin
// drifts low linearly with the term count — for the 49 blocks of a
// vehicle window that is ~3.7e-4, above the quantized path's
// divergence budget near the decision threshold. Round-half-even ties
// alternate with the quotient parity and cancel, so the accumulated
// error of the whole chain stays within one LSB.
func TestMulAccumulatedRoundingBias(t *testing.T) {
	const terms = 96
	a := Q(1 << (FracBits - 1)) // 0.5: product fraction is (b & 1) half-LSBs
	var sum, exact float64
	for k := 0; k < terms; k++ {
		b := Q(2*k + 1) // odd raw value: every product ties
		sum += a.Mul(b).Float()
		exact += a.Float() * b.Float()
	}
	errLSB := math.Abs(sum-exact) * float64(One)
	if errLSB > 1 {
		t.Fatalf("accumulated Mul rounding error %.2f LSB over %d tie products; want <= 1 (truncation drifts %d LSB)",
			errLSB, terms, terms/2)
	}
}

// TestDotMatchesWideReference pins Dot to the wide-accumulator
// round-half-even reference on a tie-heavy vector, the case where a
// truncating final shift is off by the tie direction.
func TestDotMatchesWideReference(t *testing.T) {
	a := make([]Q, 33)
	b := make([]Q, 33)
	var acc int64
	for i := range a {
		a[i] = Q(1<<15 + int32(i))
		b[i] = Q(2*int32(i) + 1)
		acc += int64(a[i]) * int64(b[i])
	}
	want := Q(rneShift(acc, FracBits))
	if got := Dot(a, b); got != want {
		t.Fatalf("Dot = %d, want round-half-even reference %d", got, want)
	}
}

// TestIntOpsSaturation covers the narrow-integer kernels the
// quantized block-response plane is built from.
func TestIntOpsSaturation(t *testing.T) {
	if got := SatI32(int64(math.MaxInt32) + 5); got != math.MaxInt32 {
		t.Errorf("SatI32 high = %d", got)
	}
	if got := SatI32(int64(math.MinInt32) - 5); got != math.MinInt32 {
		t.Errorf("SatI32 low = %d", got)
	}
	if got := AddSatI32(math.MaxInt32, 1); got != math.MaxInt32 {
		t.Errorf("AddSatI32 overflow = %d", got)
	}
	if got := AddSatI32(math.MinInt32, -1); got != math.MinInt32 {
		t.Errorf("AddSatI32 underflow = %d", got)
	}
	if got := AddSatI32(-3, 5); got != 2 {
		t.Errorf("AddSatI32(-3, 5) = %d", got)
	}
	if got := DotI16([]int16{3, -4, 5}, []int16{2, 1, -2}); got != 3*2-4+5*(-2) {
		t.Errorf("DotI16 = %d", got)
	}
	if got := DotI16([]int16{math.MaxInt16, math.MaxInt16}, []int16{math.MaxInt16, math.MaxInt16}); got != 2*int64(math.MaxInt16)*int64(math.MaxInt16) {
		t.Errorf("DotI16 wide = %d", got)
	}
}

// TestQuantizeQ14 checks rounding, clamping and buffer reuse of the
// block-plane quantizer.
func TestQuantizeQ14(t *testing.T) {
	src := []float64{0, 1, 0.5, 0.25, -0.1, 2.5, 1.0 / 3}
	dst := QuantizeQ14(nil, src)
	want := []int16{0, 1 << BlockFracBits, 1 << (BlockFracBits - 1), 1 << (BlockFracBits - 2),
		0, math.MaxInt16, int16(math.Round(float64(int64(1)<<BlockFracBits) / 3))}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("QuantizeQ14[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	// Reuse: a second call with a smaller plane keeps the backing array.
	p := &dst[0]
	dst2 := QuantizeQ14(dst, src[:3])
	if len(dst2) != 3 || &dst2[0] != p {
		t.Errorf("QuantizeQ14 did not reuse the backing array")
	}
}
