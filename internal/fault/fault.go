// Package fault is the deterministic fault injector for the
// reconfiguration datapath. A Plan is armed with rules ("corrupt the
// second staging of the dark bitstream", "drop the first PR-done
// interrupt") or with seeded probabilities, then handed to the
// platform; the hooks in internal/axi, internal/soc and internal/pr
// consult it at the exact points where real hardware fails — the CRC
// word check before an ICAP stream, the DMA transfer itself, the
// PL-to-PS interrupt line, and the BRAM model-select register write.
//
// Every hook is safe on a nil *Plan and costs one nil check, so the
// fault-free configuration pays nothing. Decisions are fully
// deterministic: rules match on per-site occurrence counters, and the
// probabilistic Chaos mode draws from a seeded xorshift generator, so
// a given (plan construction, call sequence) always yields the same
// fault sequence — which is what makes degraded-mode scenarios
// reproducible in tests.
package fault

import (
	"fmt"
	"sync"
)

// Site identifies one injection point in the datapath.
type Site int

const (
	// SiteStageCorrupt corrupts a bitstream while it is being staged
	// into PL DDR: the stored CRC no longer matches the generation-time
	// checksum, so the pre-stream verify pass fails.
	SiteStageCorrupt Site = iota
	// SiteDMAStall pauses a DMA transfer mid-stream at a byte offset:
	// the transfer still completes, late.
	SiteDMAStall
	// SiteDMAAbort kills a DMA transfer mid-stream at a byte offset:
	// the engine error-halts and the completion interrupt never fires.
	SiteDMAAbort
	// SiteIRQDrop loses a PL-to-PS interrupt: the line is asserted but
	// the handler never runs.
	SiteIRQDrop
	// SiteBankSelect fails a BRAM model-bank select register write.
	SiteBankSelect
	numSites
)

var siteNames = [numSites]string{
	"stage-corrupt", "dma-stall", "dma-abort", "irq-drop", "bank-select",
}

func (s Site) String() string {
	if s < 0 || s >= numSites {
		return "unknown"
	}
	return siteNames[s]
}

// DMAAction is the outcome of consulting the plan at a DMA launch.
type DMAAction int

const (
	// DMANone leaves the transfer alone.
	DMANone DMAAction = iota
	// DMAStall delays the transfer by StallPS at Offset bytes.
	DMAStall
	// DMAAbort error-halts the transfer at Offset bytes.
	DMAAbort
)

// DMAFault is the injection decision for one DMA transfer.
type DMAFault struct {
	Action  DMAAction
	Offset  int    // byte offset into the transfer (0 = engine default)
	StallPS uint64 // extra simulated time for DMAStall
}

// Event records one fired fault, for test assertions and reports.
type Event struct {
	Site Site
	Key  string // bitstream id, DMA name, IRQ line, or "" for bank
	Seq  int    // 1-based occurrence of the site+key when it fired
}

func (e Event) String() string {
	if e.Key == "" {
		return fmt.Sprintf("%s#%d", e.Site, e.Seq)
	}
	return fmt.Sprintf("%s(%s)#%d", e.Site, e.Key, e.Seq)
}

// rule is one armed deterministic injection.
type rule struct {
	site Site
	key  string // "" matches any key at the site
	occ  int    // 1-based occurrence to fire on; 0 fires on every occurrence
	// payload
	mask    uint32 // stage corruption xor mask (nonzero)
	offset  int
	stallPS uint64
}

type siteKey struct {
	site Site
	key  string
}

// Plan is a set of armed faults. Arm it with the chainable rule
// methods (CorruptStage, StallDMA, ...) or the probabilistic Chaos
// knob, then install it on the platform (Zynq.SetFaultPlan,
// DMAICAP.SetFaultPlan, adaptive's WithFaultPlan). A nil *Plan is a
// valid, empty plan: every hook reports "no fault".
//
// The mutex exists for the -race test lane; the simulator itself is
// single-threaded, so the lock is uncontended in practice.
type Plan struct {
	mu     sync.Mutex
	rng    uint64 // xorshift64 state, seeded at construction
	rules  []rule
	chaos  [numSites]float64 // per-site fire probability
	counts map[siteKey]int   // consults seen per (site, key)
	events []Event
}

// NewPlan returns an empty plan whose probabilistic decisions derive
// from seed. The same seed and call sequence reproduce the same
// faults.
func NewPlan(seed uint64) *Plan {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15 // xorshift must not start at zero
	}
	return &Plan{rng: seed, counts: map[siteKey]int{}}
}

// CorruptStage arms a corruption of the given bitstream id on its
// occurrence-th staging (1-based; 0 = every staging). The stored
// checksum is xored with a seed-derived nonzero mask, so the verify
// pass before streaming fails with ErrVerify.
func (p *Plan) CorruptStage(id string, occurrence int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	mask := uint32(p.next())
	if mask == 0 {
		mask = 0xdeadbeef
	}
	p.rules = append(p.rules, rule{site: SiteStageCorrupt, key: id, occ: occurrence, mask: mask})
	return p
}

// StallDMA arms a mid-stream stall of the named DMA engine on its
// occurrence-th transfer: the transfer pauses at atByte for stallPS of
// simulated time, then completes.
func (p *Plan) StallDMA(name string, occurrence, atByte int, stallPS uint64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, rule{site: SiteDMAStall, key: name, occ: occurrence, offset: atByte, stallPS: stallPS})
	return p
}

// AbortDMA arms a mid-stream abort of the named DMA engine on its
// occurrence-th transfer: the engine error-halts at atByte and the
// completion interrupt never fires.
func (p *Plan) AbortDMA(name string, occurrence, atByte int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, rule{site: SiteDMAAbort, key: name, occ: occurrence, offset: atByte})
	return p
}

// DropIRQ arms the loss of the given IRQ line's occurrence-th
// assertion: the line counter still advances, but the handler never
// runs.
func (p *Plan) DropIRQ(line, occurrence int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, rule{site: SiteIRQDrop, key: irqKey(line), occ: occurrence})
	return p
}

// FailBankSelect arms a failure of the occurrence-th BRAM model-bank
// select write.
func (p *Plan) FailBankSelect(occurrence int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, rule{site: SiteBankSelect, occ: occurrence})
	return p
}

// Chaos sets a per-consult fire probability for a site, drawn from the
// plan's seeded generator. Deterministic rules are checked first;
// chaos only fires where no rule matched.
func (p *Plan) Chaos(s Site, prob float64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s >= 0 && s < numSites {
		p.chaos[s] = prob
	}
	return p
}

// OnStage is the staging hook: it reports whether this staging of id
// should be corrupted and with what xor mask. Nil-safe.
func (p *Plan) OnStage(id string) (mask uint32, corrupt bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	seq := p.bump(SiteStageCorrupt, id)
	if r := p.match(SiteStageCorrupt, id, seq); r != nil {
		p.fire(SiteStageCorrupt, id, seq)
		return r.mask, true
	}
	if p.draw(SiteStageCorrupt) {
		p.fire(SiteStageCorrupt, id, seq)
		m := uint32(p.next())
		if m == 0 {
			m = 0xdeadbeef
		}
		return m, true
	}
	return 0, false
}

// OnDMA is the transfer-launch hook for the named DMA engine moving
// the given byte count. Nil-safe.
func (p *Plan) OnDMA(name string, bytes int) DMAFault {
	if p == nil {
		return DMAFault{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Stall and abort are distinct sites but consult the same launch;
	// a single shared occurrence counter keeps "the engine's Nth
	// transfer" meaning the same thing for both.
	seq := p.bump(SiteDMAStall, name)
	p.counts[siteKey{SiteDMAAbort, name}] = seq
	if r := p.match(SiteDMAAbort, name, seq); r != nil {
		p.fire(SiteDMAAbort, name, seq)
		return DMAFault{Action: DMAAbort, Offset: clampOffset(r.offset, bytes)}
	}
	if r := p.match(SiteDMAStall, name, seq); r != nil {
		p.fire(SiteDMAStall, name, seq)
		return DMAFault{Action: DMAStall, Offset: clampOffset(r.offset, bytes), StallPS: r.stallPS}
	}
	if p.draw(SiteDMAAbort) {
		p.fire(SiteDMAAbort, name, seq)
		return DMAFault{Action: DMAAbort, Offset: bytes / 2}
	}
	if p.draw(SiteDMAStall) {
		p.fire(SiteDMAStall, name, seq)
		return DMAFault{Action: DMAStall, Offset: bytes / 2, StallPS: 1_000_000_000} // 1 ms
	}
	return DMAFault{}
}

// OnIRQ is the interrupt-raise hook: true means this assertion of the
// line is lost. Nil-safe.
func (p *Plan) OnIRQ(line int) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := irqKey(line)
	seq := p.bump(SiteIRQDrop, key)
	if p.match(SiteIRQDrop, key, seq) != nil || p.draw(SiteIRQDrop) {
		p.fire(SiteIRQDrop, key, seq)
		return true
	}
	return false
}

// OnBankSelect is the model-bank hook: true means this select write
// fails. Nil-safe.
func (p *Plan) OnBankSelect() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	seq := p.bump(SiteBankSelect, "")
	if p.match(SiteBankSelect, "", seq) != nil || p.draw(SiteBankSelect) {
		p.fire(SiteBankSelect, "", seq)
		return true
	}
	return false
}

// Events returns a copy of the faults fired so far, in firing order.
// Nil-safe.
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// Count returns how many faults have fired at a site. Nil-safe.
func (p *Plan) Count(s Site) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.events {
		if e.Site == s {
			n++
		}
	}
	return n
}

// bump advances and returns the 1-based consult counter for site+key.
func (p *Plan) bump(s Site, key string) int {
	k := siteKey{s, key}
	p.counts[k]++
	return p.counts[k]
}

// match finds the first armed rule covering this consult.
func (p *Plan) match(s Site, key string, seq int) *rule {
	for i := range p.rules {
		r := &p.rules[i]
		if r.site != s {
			continue
		}
		if r.key != "" && r.key != key {
			continue
		}
		if r.occ == 0 || r.occ == seq {
			return r
		}
	}
	return nil
}

// draw samples the chaos probability for a site.
func (p *Plan) draw(s Site) bool {
	if p.chaos[s] <= 0 {
		return false
	}
	// 53-bit uniform in [0,1) from the xorshift state.
	u := float64(p.next()>>11) / float64(1<<53)
	return u < p.chaos[s]
}

func (p *Plan) fire(s Site, key string, seq int) {
	p.events = append(p.events, Event{Site: s, Key: key, Seq: seq})
}

// next advances the xorshift64 generator.
func (p *Plan) next() uint64 {
	x := p.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rng = x
	return x
}

func irqKey(line int) string { return fmt.Sprintf("irq%d", line) }

func clampOffset(off, bytes int) int {
	if off <= 0 || off >= bytes {
		return bytes / 2
	}
	return off
}
