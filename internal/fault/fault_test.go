package fault

import "testing"

// TestNilPlanIsNoFault pins the zero-cost disabled path: every hook on
// a nil plan reports "no fault".
func TestNilPlanIsNoFault(t *testing.T) {
	var p *Plan
	if _, corrupt := p.OnStage("dark"); corrupt {
		t.Fatal("nil plan corrupted a staging")
	}
	if f := p.OnDMA("pr-dma", 1024); f.Action != DMANone {
		t.Fatalf("nil plan injected DMA fault %v", f)
	}
	if p.OnIRQ(2) {
		t.Fatal("nil plan dropped an IRQ")
	}
	if p.OnBankSelect() {
		t.Fatal("nil plan failed a bank select")
	}
	if ev := p.Events(); ev != nil {
		t.Fatalf("nil plan has events %v", ev)
	}
	if p.Count(SiteIRQDrop) != 0 {
		t.Fatal("nil plan has a nonzero count")
	}
}

// TestOccurrenceMatching pins the 1-based occurrence semantics: a rule
// armed for occurrence 2 skips the first consult and fires exactly
// once.
func TestOccurrenceMatching(t *testing.T) {
	p := NewPlan(1).CorruptStage("dark", 2)
	if _, corrupt := p.OnStage("dark"); corrupt {
		t.Fatal("occurrence-2 rule fired on the first staging")
	}
	mask, corrupt := p.OnStage("dark")
	if !corrupt {
		t.Fatal("occurrence-2 rule did not fire on the second staging")
	}
	if mask == 0 {
		t.Fatal("corruption mask must be nonzero or the CRC would still match")
	}
	if _, corrupt := p.OnStage("dark"); corrupt {
		t.Fatal("occurrence-2 rule fired a third time")
	}
	if got := p.Count(SiteStageCorrupt); got != 1 {
		t.Fatalf("Count(SiteStageCorrupt) = %d, want 1", got)
	}
}

// TestOccurrenceZeroFiresEveryTime pins occ=0 as "every occurrence".
func TestOccurrenceZeroFiresEveryTime(t *testing.T) {
	p := NewPlan(1).DropIRQ(2, 0)
	for i := 0; i < 5; i++ {
		if !p.OnIRQ(2) {
			t.Fatalf("occ=0 drop rule did not fire on assertion %d", i+1)
		}
	}
	if p.OnIRQ(1) {
		t.Fatal("drop rule for line 2 fired on line 1")
	}
	if got := p.Count(SiteIRQDrop); got != 5 {
		t.Fatalf("Count(SiteIRQDrop) = %d, want 5", got)
	}
}

// TestKeysAreIndependent pins that occurrence counters are per key:
// staging other ids does not advance the dark counter.
func TestKeysAreIndependent(t *testing.T) {
	p := NewPlan(1).CorruptStage("dark", 1)
	if _, corrupt := p.OnStage("day-dusk"); corrupt {
		t.Fatal("rule for dark fired on day-dusk")
	}
	if _, corrupt := p.OnStage("dark"); !corrupt {
		t.Fatal("dark's first staging should be corrupted despite earlier day-dusk stagings")
	}
}

// TestDMAAbortAndStall pins the DMA decision payloads, the abort >
// stall priority, and the shared occurrence counter.
func TestDMAAbortAndStall(t *testing.T) {
	p := NewPlan(1).
		AbortDMA("pr-dma", 1, 4096).
		StallDMA("pr-dma", 2, 100, 7_000)

	f := p.OnDMA("pr-dma", 1<<20)
	if f.Action != DMAAbort || f.Offset != 4096 {
		t.Fatalf("first transfer = %+v, want abort at 4096", f)
	}
	f = p.OnDMA("pr-dma", 1<<20)
	if f.Action != DMAStall || f.Offset != 100 || f.StallPS != 7_000 {
		t.Fatalf("second transfer = %+v, want stall at 100 for 7000 ps", f)
	}
	if f = p.OnDMA("pr-dma", 1<<20); f.Action != DMANone {
		t.Fatalf("third transfer = %+v, want none", f)
	}
	// An out-of-range offset clamps to mid-transfer.
	p2 := NewPlan(1).AbortDMA("x", 1, 1<<30)
	if f := p2.OnDMA("x", 1000); f.Offset != 500 {
		t.Fatalf("oversized offset clamped to %d, want 500", f.Offset)
	}
}

// TestChaosIsDeterministic pins that two plans with the same seed make
// identical probabilistic decisions, and different seeds diverge.
func TestChaosIsDeterministic(t *testing.T) {
	decide := func(seed uint64) []bool {
		p := NewPlan(seed).Chaos(SiteIRQDrop, 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.OnIRQ(2)
		}
		return out
	}
	a, b := decide(42), decide(42)
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at consult %d", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("chaos at p=0.5 dropped %d/%d — generator looks broken", drops, len(a))
	}
	c := decide(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decisions")
	}
}

// TestEventsRecordFiringOrder pins the event log shape.
func TestEventsRecordFiringOrder(t *testing.T) {
	p := NewPlan(1).CorruptStage("dark", 1).DropIRQ(2, 1).FailBankSelect(1)
	p.OnStage("dark")
	p.OnIRQ(2)
	if !p.OnBankSelect() {
		t.Fatal("bank-select rule did not fire")
	}
	ev := p.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3: %v", len(ev), ev)
	}
	want := []Site{SiteStageCorrupt, SiteIRQDrop, SiteBankSelect}
	for i, e := range ev {
		if e.Site != want[i] {
			t.Fatalf("event %d = %v, want site %v", i, e, want[i])
		}
		if e.String() == "" {
			t.Fatalf("event %d has empty String()", i)
		}
	}
}

// TestZeroSeedIsUsable pins that seed 0 does not wedge the xorshift
// generator (all-zero state would never fire chaos).
func TestZeroSeedIsUsable(t *testing.T) {
	p := NewPlan(0).Chaos(SiteBankSelect, 1.0)
	if !p.OnBankSelect() {
		t.Fatal("p=1.0 chaos never fired with seed 0")
	}
}
