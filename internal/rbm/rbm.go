// Package rbm implements Bernoulli–Bernoulli restricted Boltzmann
// machines trained by contrastive divergence. RBMs are the building
// blocks of the paper's deep belief network: "separately trained
// restricted Boltzmann machines which are stacked on top of each
// other to extract the hidden features" (§III-B).
package rbm

import (
	"fmt"
	"math"
)

// RBM is a restricted Boltzmann machine with NV visible and NH hidden
// Bernoulli units.
type RBM struct {
	NV, NH int
	// W is row-major [NH][NV]: W[h*NV+v] couples hidden h to visible v.
	W []float64
	// BV and BH are the visible and hidden biases.
	BV []float64
	BH []float64
}

// RNG is the minimal random source the trainer needs; satisfied by
// synth.RNG. Defined here so rbm does not depend on synth.
type RNG interface {
	Float64() float64
	Norm() float64
}

// New returns an RBM with small random weights (N(0, 0.01)) and zero
// biases, the standard CD initialization.
func New(nv, nh int, rng RNG) *RBM {
	if nv <= 0 || nh <= 0 {
		// lint:invariant layer sizes are fixed by the network topology; non-positive is a programming error
		panic(fmt.Sprintf("rbm: invalid size %dx%d", nv, nh))
	}
	r := &RBM{
		NV: nv, NH: nh,
		W:  make([]float64, nh*nv),
		BV: make([]float64, nv),
		BH: make([]float64, nh),
	}
	for i := range r.W {
		r.W[i] = rng.Norm() * 0.01
	}
	return r
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// HiddenProbs writes P(h=1|v) into out (allocating if nil) and
// returns it.
func (r *RBM) HiddenProbs(v []float64, out []float64) []float64 {
	if len(v) != r.NV {
		// lint:invariant vector length is fixed by the trained topology; mismatch is a wiring bug
		panic(fmt.Sprintf("rbm: visible length %d, want %d", len(v), r.NV))
	}
	if out == nil {
		out = make([]float64, r.NH)
	}
	for h := 0; h < r.NH; h++ {
		s := r.BH[h]
		row := r.W[h*r.NV : (h+1)*r.NV]
		for i, vi := range v {
			s += row[i] * vi
		}
		out[h] = sigmoid(s)
	}
	return out
}

// VisibleProbs writes P(v=1|h) into out (allocating if nil) and
// returns it.
func (r *RBM) VisibleProbs(h []float64, out []float64) []float64 {
	if len(h) != r.NH {
		// lint:invariant vector length is fixed by the trained topology; mismatch is a wiring bug
		panic(fmt.Sprintf("rbm: hidden length %d, want %d", len(h), r.NH))
	}
	if out == nil {
		out = make([]float64, r.NV)
	}
	for i := 0; i < r.NV; i++ {
		out[i] = r.BV[i]
	}
	for j := 0; j < r.NH; j++ {
		hj := h[j]
		if hj == 0 {
			continue
		}
		row := r.W[j*r.NV : (j+1)*r.NV]
		for i := range out {
			out[i] += row[i] * hj
		}
	}
	for i := range out {
		out[i] = sigmoid(out[i])
	}
	return out
}

// sample draws Bernoulli states from probabilities.
func sample(p []float64, rng RNG, out []float64) []float64 {
	if out == nil {
		out = make([]float64, len(p))
	}
	for i, pi := range p {
		if rng.Float64() < pi {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
	return out
}

// TrainOptions configures contrastive-divergence training.
type TrainOptions struct {
	Epochs    int     // passes over the data (default 10)
	BatchSize int     // minibatch size (default 10)
	LR        float64 // learning rate (default 0.1)
	CDK       int     // Gibbs steps per update (default 1)
	Momentum  float64 // gradient momentum (default 0.5)
}

// DefaultTrainOptions returns the standard CD-1 settings.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 10, BatchSize: 10, LR: 0.1, CDK: 1, Momentum: 0.5}
}

// Train runs CD-k over data (each row length NV, values in [0,1]) and
// returns the mean reconstruction error of the final epoch.
func (r *RBM) Train(data [][]float64, o TrainOptions, rng RNG) float64 {
	if o.Epochs <= 0 {
		o.Epochs = 10
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 10
	}
	if o.LR <= 0 {
		o.LR = 0.1
	}
	if o.CDK <= 0 {
		o.CDK = 1
	}

	n := len(data)
	if n == 0 {
		return 0
	}
	dW := make([]float64, len(r.W))
	dBV := make([]float64, r.NV)
	dBH := make([]float64, r.NH)
	mW := make([]float64, len(r.W))
	mBV := make([]float64, r.NV)
	mBH := make([]float64, r.NH)

	h0 := make([]float64, r.NH)
	hs := make([]float64, r.NH)
	vk := make([]float64, r.NV)
	hk := make([]float64, r.NH)

	var lastErr float64
	for epoch := 0; epoch < o.Epochs; epoch++ {
		var epochErr float64
		for start := 0; start < n; start += o.BatchSize {
			end := start + o.BatchSize
			if end > n {
				end = n
			}
			batch := data[start:end]
			for i := range dW {
				dW[i] = 0
			}
			for i := range dBV {
				dBV[i] = 0
			}
			for i := range dBH {
				dBH[i] = 0
			}
			for _, v0 := range batch {
				// Positive phase.
				r.HiddenProbs(v0, h0)
				sample(h0, rng, hs)
				// Gibbs chain: k steps of h -> v -> h.
				copyInto(vk, v0)
				for k := 0; k < o.CDK; k++ {
					r.VisibleProbs(hs, vk)
					r.HiddenProbs(vk, hk)
					if k < o.CDK-1 {
						sample(hk, rng, hs)
					}
				}
				// Accumulate CD gradient: <v0 h0> - <vk hk>.
				for h := 0; h < r.NH; h++ {
					rowD := dW[h*r.NV : (h+1)*r.NV]
					ph0, phk := h0[h], hk[h]
					for i := 0; i < r.NV; i++ {
						rowD[i] += ph0*v0[i] - phk*vk[i]
					}
				}
				for i := 0; i < r.NV; i++ {
					dBV[i] += v0[i] - vk[i]
					d := v0[i] - vk[i]
					epochErr += d * d
				}
				for h := 0; h < r.NH; h++ {
					dBH[h] += h0[h] - hk[h]
				}
			}
			scale := o.LR / float64(len(batch))
			for i := range r.W {
				mW[i] = o.Momentum*mW[i] + scale*dW[i]
				r.W[i] += mW[i]
			}
			for i := range r.BV {
				mBV[i] = o.Momentum*mBV[i] + scale*dBV[i]
				r.BV[i] += mBV[i]
			}
			for i := range r.BH {
				mBH[i] = o.Momentum*mBH[i] + scale*dBH[i]
				r.BH[i] += mBH[i]
			}
		}
		lastErr = epochErr / float64(n)
	}
	return lastErr
}

// ReconstructionError returns the mean squared error of one
// deterministic up-down pass over data.
func (r *RBM) ReconstructionError(data [][]float64) float64 {
	if len(data) == 0 {
		return 0
	}
	h := make([]float64, r.NH)
	v := make([]float64, r.NV)
	var sum float64
	for _, v0 := range data {
		r.HiddenProbs(v0, h)
		r.VisibleProbs(h, v)
		for i := range v0 {
			d := v0[i] - v[i]
			sum += d * d
		}
	}
	return sum / float64(len(data))
}

func copyInto(dst, src []float64) {
	copy(dst, src)
}
