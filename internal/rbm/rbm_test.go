package rbm

import (
	"math"
	"testing"
)

// testRNG is a deterministic source satisfying the RNG interface.
type testRNG struct {
	s        uint64
	spare    float64
	hasSpare bool
}

func newRNG(seed uint64) *testRNG { return &testRNG{s: seed} }

func (r *testRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *testRNG) Float64() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *testRNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			m := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * m
			r.hasSpare = true
			return u * m
		}
	}
}

// stripes builds a tiny dataset of two repeating 2x3 visible patterns,
// easy for a 2-hidden-unit RBM to memorize.
func stripes() [][]float64 {
	a := []float64{1, 1, 1, 0, 0, 0}
	b := []float64{0, 0, 0, 1, 1, 1}
	var data [][]float64
	for i := 0; i < 30; i++ {
		data = append(data, a, b)
	}
	return data
}

func TestNewShapesAndInit(t *testing.T) {
	r := New(6, 3, newRNG(1))
	if len(r.W) != 18 || len(r.BV) != 6 || len(r.BH) != 3 {
		t.Fatalf("shapes: W=%d BV=%d BH=%d", len(r.W), len(r.BV), len(r.BH))
	}
	var sum float64
	for _, w := range r.W {
		sum += math.Abs(w)
	}
	if sum == 0 {
		t.Fatal("weights not initialized")
	}
	if sum/float64(len(r.W)) > 0.1 {
		t.Fatal("weight init too large")
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 3) did not panic")
		}
	}()
	New(0, 3, newRNG(1))
}

func TestProbsInUnitInterval(t *testing.T) {
	r := New(6, 4, newRNG(2))
	v := []float64{1, 0, 1, 0, 1, 0}
	h := r.HiddenProbs(v, nil)
	for _, p := range h {
		if p < 0 || p > 1 {
			t.Fatalf("hidden prob %v out of range", p)
		}
	}
	vr := r.VisibleProbs(h, nil)
	for _, p := range vr {
		if p < 0 || p > 1 {
			t.Fatalf("visible prob %v out of range", p)
		}
	}
}

func TestProbsPanicOnWrongLength(t *testing.T) {
	r := New(6, 4, newRNG(3))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong visible length did not panic")
		}
	}()
	r.HiddenProbs([]float64{1, 2}, nil)
}

func TestTrainReducesReconstructionError(t *testing.T) {
	data := stripes()
	rng := newRNG(4)
	r := New(6, 2, rng)
	before := r.ReconstructionError(data)
	o := DefaultTrainOptions()
	o.Epochs = 50
	r.Train(data, o, rng)
	after := r.ReconstructionError(data)
	if after >= before {
		t.Fatalf("reconstruction error did not improve: %v -> %v", before, after)
	}
	if after > 0.8 {
		t.Fatalf("reconstruction error %v still high on trivial data", after)
	}
}

func TestTrainSeparatesPatterns(t *testing.T) {
	// After training, the two patterns must map to distinct hidden
	// representations.
	data := stripes()
	rng := newRNG(5)
	r := New(6, 2, rng)
	o := DefaultTrainOptions()
	o.Epochs = 80
	r.Train(data, o, rng)
	ha := r.HiddenProbs(data[0], nil)
	hb := r.HiddenProbs(data[1], nil)
	var dist float64
	for i := range ha {
		d := ha[i] - hb[i]
		dist += d * d
	}
	if dist < 0.25 {
		t.Fatalf("hidden representations not separated: %v vs %v", ha, hb)
	}
}

func TestTrainEmptyDataNoop(t *testing.T) {
	r := New(4, 2, newRNG(6))
	if got := r.Train(nil, DefaultTrainOptions(), newRNG(7)); got != 0 {
		t.Fatalf("training on empty data returned %v", got)
	}
}

func TestCDKGreaterThanOne(t *testing.T) {
	data := stripes()
	rng := newRNG(8)
	r := New(6, 2, rng)
	o := DefaultTrainOptions()
	o.CDK = 3
	o.Epochs = 30
	before := r.ReconstructionError(data)
	r.Train(data, o, rng)
	if after := r.ReconstructionError(data); after >= before {
		t.Fatalf("CD-3 did not improve: %v -> %v", before, after)
	}
}

func TestTrainDeterministic(t *testing.T) {
	data := stripes()
	r1 := New(6, 2, newRNG(9))
	r2 := New(6, 2, newRNG(9))
	o := DefaultTrainOptions()
	o.Epochs = 5
	r1.Train(data, o, newRNG(10))
	r2.Train(data, o, newRNG(10))
	for i := range r1.W {
		if r1.W[i] != r2.W[i] {
			t.Fatal("identical seeds produced different weights")
		}
	}
}
