package advdet

import (
	"context"
	"fmt"
	"sync"

	"advdet/internal/metrics"
)

// Stream is one camera's view of a shared Engine: the per-stream
// adaptive state (monitor, reconfiguration state machine, slot clock,
// stats, optional metrics registry) behind a frame-at-a-time API whose
// work executes on the engine's shared worker pool.
type Stream struct {
	eng  *Engine
	sys  *System
	name string

	mu     sync.Mutex
	closed bool
}

// streamConfig collects the StreamOption knobs over a SystemOptions.
type streamConfig struct {
	name   string
	ledger bool
	opt    SystemOptions
}

// StreamOption configures a Stream at creation time. Options are
// applied in order on top of DefaultSystemOptions, so later options
// win; WithStreamSystemOptions replaces the whole struct and is
// therefore usually first when mixed with field options.
type StreamOption func(*streamConfig)

// WithStreamName labels the stream in the fleet metrics rollup and in
// error messages. Defaults to "stream-<n>" in creation order.
func WithStreamName(name string) StreamOption {
	return func(c *streamConfig) { c.name = name }
}

// WithStreamSystemOptions replaces the stream's entire option struct —
// the bridge for callers still building a SystemOptions by hand.
func WithStreamSystemOptions(opt SystemOptions) StreamOption {
	return func(c *streamConfig) { c.opt = opt }
}

// WithStreamFPS sets the stream's camera frame rate (the paper runs
// at 50).
func WithStreamFPS(fps int) StreamOption {
	return func(c *streamConfig) { c.opt.FPS = fps }
}

// WithStreamBitstreamBytes sets the partial bitstream size used by the
// stream's reconfiguration model.
func WithStreamBitstreamBytes(n int) StreamOption {
	return func(c *streamConfig) { c.opt.BitstreamBytes = n }
}

// WithStreamInitial sets the stream's boot lighting condition.
func WithStreamInitial(cond Condition) StreamOption {
	return func(c *streamConfig) { c.opt.Initial = cond }
}

// WithStreamParallelism caps how many of the engine's shared scan
// lanes one of this stream's frames may borrow (n <= 0 means up to
// runtime.NumCPU()). Detection output is identical for every setting.
func WithStreamParallelism(n int) StreamOption {
	return func(c *streamConfig) { c.opt.Parallelism = n }
}

// WithStreamTimingOnly disables software detection for this stream:
// it models frame timing and reconfiguration only.
func WithStreamTimingOnly() StreamOption {
	return func(c *streamConfig) { c.opt.RunDetectors = false }
}

// WithStreamSenseFromImage estimates ambient light from frame pixels
// instead of the scene's sensor value.
func WithStreamSenseFromImage() StreamOption {
	return func(c *streamConfig) { c.opt.SenseFromImage = true }
}

// WithStreamTracking runs the Kalman/Hungarian tracker over this
// stream's detections.
func WithStreamTracking() StreamOption {
	return func(c *streamConfig) { c.opt.EnableTracking = true }
}

// WithStreamMetrics attaches a per-stream telemetry registry; the
// stream then also contributes its slot-deadline record to the
// engine's FleetSnapshot capacity rollup.
func WithStreamMetrics() StreamOption {
	return func(c *streamConfig) { c.opt.EnableMetrics = true }
}

// WithStreamFaultPlan installs a fault injector on this stream's
// reconfiguration datapath (see NewFaultPlan).
func WithStreamFaultPlan(p *FaultPlan) StreamOption {
	return func(c *streamConfig) { c.opt.FaultPlan = p }
}

// WithStreamRetryPolicy bounds this stream's reconfiguration watchdog
// and retry/backoff loop.
func WithStreamRetryPolicy(rp RetryPolicy) StreamOption {
	return func(c *streamConfig) { c.opt.Retry = rp }
}

// WithStreamQuantizedScan scores this stream's HOG scans through the
// fixed-point block-response datapath (see WithQuantizedScan).
func WithStreamQuantizedScan() StreamOption {
	return func(c *streamConfig) { c.opt.ScanQuantized = true }
}

// WithStreamTemporalCache reuses this stream's feature/block/response
// buffers across its consecutive frames (see WithTemporalCache). Each
// stream gets its own caches, so the option is safe on engines whose
// streams share one Detectors value.
func WithStreamTemporalCache() StreamOption {
	return func(c *streamConfig) { c.opt.ScanTemporalCache = true }
}

// WithStreamNoEarlyReject disables the partial-margin early exit for
// this stream's HOG scans (see WithoutEarlyReject).
func WithStreamNoEarlyReject() StreamOption {
	return func(c *streamConfig) { c.opt.ScanNoEarlyReject = true }
}

// WithStreamEventSink subscribes a consumer to this stream's typed
// event stream (see WithEventSink). One sink value may subscribe to
// several streams — EventLog is safe for that — with each event
// carrying the engine-assigned stream id.
func WithStreamEventSink(sink EventSink) StreamOption {
	return func(c *streamConfig) { c.opt.EventSinks = append(c.opt.EventSinks, sink) }
}

// WithStreamLedger enrolls the stream in the engine's shared
// tamper-evident ledger: the stream gets its own hash chain (keyed by
// its engine-assigned id) inside the one engine-level ledger, whose
// Merkle batches interleave all enrolled streams under a single
// anchor chain and are sealed by size, simulated-time span, or the
// engine's wall-clock sealer (joined and flushed by Engine.Close).
// Access it with Engine.Ledger().
func WithStreamLedger() StreamOption {
	return func(c *streamConfig) { c.ledger = true }
}

// Name returns the stream's fleet label.
func (s *Stream) Name() string { return s.name }

// System exposes the stream's underlying adaptive System for advanced
// inspection (trace, platform, monitor). Do not call its Process
// methods directly while also using Stream.Process: the stream
// serializes frames and routes them through the engine's worker pool;
// bypassing it races.
func (s *Stream) System() *System { return s.sys }

// Stats returns the stream's accumulated counters.
func (s *Stream) Stats() Stats { return s.sys.Stats() }

// Loaded returns the configuration currently resident on this stream's
// reconfigurable partition.
func (s *Stream) Loaded() ConfigID { return s.sys.Loaded() }

// Mode returns the stream's resilience mode (nominal or degraded).
func (s *Stream) Mode() Mode { return s.sys.Mode() }

// Snapshot exports the stream's telemetry registry (zero-valued with
// Enabled=false unless WithStreamMetrics was given).
func (s *Stream) Snapshot() MetricsSnapshot { return s.sys.Snapshot() }

// Process runs one frame through the engine: the frame is admitted to
// the engine's bounded queue (failing fast with ErrOverloaded beyond
// capacity), batched, and executed on the shared worker pool with the
// stream's own adaptive state. Frames on one stream are processed
// strictly in order; concurrent Process calls on different streams
// multiplex over the pool.
//
// The returned errors are errors.Is-matchable: ErrOverloaded (queue
// full), ErrStreamClosed (after Close), ErrEngineClosed (engine shut
// down), or the context error if ctx is cancelled while the frame
// waits in queue or mid-scan.
func (s *Stream) Process(ctx context.Context, sc *Scene) (FrameResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return FrameResult{}, fmt.Errorf("advdet: stream %s: %w", s.name, ErrStreamClosed)
	}
	var res FrameResult
	var ferr error
	tm, err := s.eng.disp.Submit(ctx, func(ctx context.Context) {
		res, ferr = s.sys.ProcessFrameCtx(ctx, sc)
	})
	if err != nil {
		return FrameResult{}, fmt.Errorf("advdet: stream %s: %w", s.name, err)
	}
	// Attribute the dispatcher trip (admission queue + batcher wait)
	// to the stream's telemetry; nil-safe when metrics are off.
	s.sys.Metrics().StageObserve(metrics.StageFleetDispatch, 0, uint64(tm.QueueWait()))
	return res, ferr
}

// RunScenario drives a whole synthetic drive through the stream frame
// by frame. On error the frames completed so far are returned
// alongside it.
func (s *Stream) RunScenario(ctx context.Context, sc *Scenario) ([]FrameResult, error) {
	n := sc.TotalFrames()
	out := make([]FrameResult, 0, n)
	for i := 0; i < n; i++ {
		res, err := s.Process(ctx, sc.FrameAt(i))
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Close detaches the stream from the engine's capacity rollup and
// fails all further Process calls with ErrStreamClosed. It does not
// stop the engine; other streams are unaffected.
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.eng.rollup.Detach(s.name)
}
