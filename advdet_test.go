package advdet

import (
	"testing"

	"advdet/internal/synth"
)

// sharedDets trains the Fast detector bundle once for all API tests.
var sharedDets *Detectors

func getDets(t *testing.T) Detectors {
	t.Helper()
	if sharedDets == nil {
		d, err := TrainDetectors(42, Fast)
		if err != nil {
			t.Fatal(err)
		}
		sharedDets = &d
	}
	return *sharedDets
}

func TestTrainDetectorsProducesAllModels(t *testing.T) {
	d := getDets(t)
	if d.Day == nil || d.Dusk == nil || d.Dark == nil || d.Pedestrian == nil {
		t.Fatal("missing detector in bundle")
	}
}

func TestEndToEndDayFrame(t *testing.T) {
	d := getDets(t)
	sys, err := NewSystem(d)
	if err != nil {
		t.Fatal(err)
	}
	sc := RenderScene(7, 320, 180, Day)
	res, err := sys.ProcessFrame(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cond != Day {
		t.Fatalf("condition %v", res.Cond)
	}
	if res.VehicleDropped {
		t.Fatal("steady-state day frame dropped")
	}
}

func TestEndToEndDarkTransition(t *testing.T) {
	d := getDets(t)
	sys, err := NewSystem(d, WithInitial(Dusk), WithTimingOnly())
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	for i := 0; i < 12; i++ {
		sc := RenderScene(uint64(100+i), 64, 36, Dark)
		res, err := sys.ProcessFrame(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.VehicleDropped {
			drops++
		}
	}
	if drops != 1 {
		t.Fatalf("transition dropped %d frames, want 1", drops)
	}
}

func TestReconfigThroughputsAPI(t *testing.T) {
	results, err := ReconfigThroughputs(8_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("controllers measured: %d", len(results))
	}
	byName := map[string]ReconfigResult{}
	for _, r := range results {
		if r.Elapsed <= 0 {
			t.Fatalf("%s: non-positive elapsed %v", r.Controller, r.Elapsed)
		}
		byName[r.Controller] = r
	}
	if !(byName["axi-hwicap"].MBPerSec < byName["pcap"].MBPerSec &&
		byName["pcap"].MBPerSec < byName["zycap"].MBPerSec &&
		byName["zycap"].MBPerSec < byName["dma-icap"].MBPerSec) {
		t.Fatalf("throughput ordering wrong: %v", results)
	}
	// Elapsed and MB/s must agree: 8 MB over dma-icap's ~380 MB/s is
	// ~20 ms.
	dma := byName["dma-icap"]
	gotMBs := 8.0 / dma.Elapsed.Seconds() // 8e6 bytes / (MB/s * 1e6)
	if gotMBs/dma.MBPerSec < 0.99 || gotMBs/dma.MBPerSec > 1.01 {
		t.Fatalf("Elapsed %v inconsistent with %.1f MB/s", dma.Elapsed, dma.MBPerSec)
	}
}

func TestReconfigThroughputsRepeats(t *testing.T) {
	// The model is deterministic: a repeated measurement's mean equals
	// the single run exactly.
	one, err := ReconfigThroughputs(8_000_000)
	if err != nil {
		t.Fatal(err)
	}
	three, err := ReconfigThroughputs(8_000_000, WithMeasureRepeats(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		if one[i] != three[i] {
			t.Fatalf("repeats changed a deterministic measurement: %+v != %+v", one[i], three[i])
		}
	}
	if _, err := ReconfigThroughputs(8_000_000, WithMeasureRepeats(0)); err == nil {
		t.Fatal("repeats=0 accepted")
	}
}

func TestPipelineFPSAPI(t *testing.T) {
	if fps := PipelineFPS(1920, 1080); fps < 48 || fps > 55 {
		t.Fatalf("FPS %v", fps)
	}
}

func TestScenarioHelpers(t *testing.T) {
	tt := TunnelTransit(1, 64, 36, 10)
	if tt.TotalFrames() == 0 {
		t.Fatal("empty tunnel scenario")
	}
	nh := NightHighway(1, 64, 36, 10)
	c, _ := nh.CondAt(0)
	if c != synth.Dark {
		t.Fatal("night highway not dark")
	}
}

func TestTrackingThroughReconfiguration(t *testing.T) {
	// End-to-end: with tracking enabled, the system maintains track
	// identity across the dusk->dark reconfiguration's dropped frame.
	d := getDets(t)
	sys, err := NewSystem(d, WithInitial(Dusk), WithTracking())
	if err != nil {
		t.Fatal(err)
	}
	duskDrive := NewDrive(31, 640, 360, Dusk, 1, 0)
	darkDrive := NewDrive(31, 640, 360, Dark, 1, 0)
	persist := map[int]int{}
	droppedSeen := false
	for i := 0; i < 30; i++ {
		var sc *Scene
		if i < 15 {
			sc = duskDrive.Frame(i)
		} else {
			sc = darkDrive.Frame(i)
		}
		res, err := sys.ProcessFrame(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.VehicleDropped {
			droppedSeen = true
		}
		for _, tr := range res.Tracks {
			persist[tr.ID]++
		}
	}
	if !droppedSeen {
		t.Fatal("transition did not drop a frame; scenario broken")
	}
	long := 0
	for _, n := range persist {
		if n >= 10 {
			long++
		}
	}
	if long == 0 {
		t.Fatal("no track persisted 10+ frames across the transition")
	}
}

func TestMetricsSnapshotEndToEnd(t *testing.T) {
	// Full-stack telemetry: real detectors, WithMetrics(), a drive
	// across day -> dusk (free model switch) -> dark (one partial
	// reconfiguration with its dropped vehicle frame), then the
	// public snapshot must account for every stage.
	d := getDets(t)
	sys, err := NewSystem(d, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	const frames = 16
	drops := 0
	for i := 0; i < frames; i++ {
		cond := Day
		switch {
		case i >= 10:
			cond = Dark
		case i >= 5:
			cond = Dusk
		}
		res, err := sys.ProcessFrame(RenderScene(uint64(200+i), 64, 36, cond))
		if err != nil {
			t.Fatal(err)
		}
		if res.VehicleDropped {
			drops++
		}
	}
	if drops != 1 {
		t.Fatalf("drive dropped %d vehicle frames, want 1", drops)
	}

	var snap MetricsSnapshot = sys.Snapshot()
	if !snap.Enabled {
		t.Fatal("snapshot not enabled despite WithMetrics")
	}
	if snap.Frames.Frames != frames {
		t.Fatalf("frame count %d, want %d", snap.Frames.Frames, frames)
	}
	if snap.Frames.DeadlineHits+snap.Frames.DeadlineMisses != frames {
		t.Fatalf("hits %d + misses %d != %d frames",
			snap.Frames.DeadlineHits, snap.Frames.DeadlineMisses, frames)
	}
	want := map[string]uint64{
		"sense":           frames,
		"model-select":    1,          // day->dusk BRAM switch
		"reconfig":        1,          // dusk->dark bitstream swap
		"vehicle-scan":    frames - 1, // skipped on the dropped frame
		"pedestrian-scan": frames,     // static partition, never interrupted
	}
	for name, n := range want {
		st, ok := snap.StageByName(name)
		if !ok {
			t.Fatalf("stage %q missing from snapshot", name)
		}
		if st.Count != n {
			t.Fatalf("stage %q count %d, want %d", name, st.Count, n)
		}
	}
	// Software scans run on the CPU: their cost is wall time.
	for _, name := range []string{"vehicle-scan", "pedestrian-scan"} {
		if st, _ := snap.StageByName(name); st.WallNSTotal == 0 {
			t.Fatalf("stage %q recorded no wall time", name)
		}
	}
	// The reconfiguration is simulated hardware: ~20 ms of sim time.
	if rc, _ := snap.StageByName("reconfig"); rc.SimPSTotal < 19_000_000_000 || rc.SimPSTotal > 22_000_000_000 {
		t.Fatalf("reconfig stage %d ps outside ~20 ms", rc.SimPSTotal)
	}
}

func TestMatchBoxesAPI(t *testing.T) {
	truth := []Rect{{X0: 0, Y0: 0, X1: 10, Y1: 10}}
	c := MatchBoxes(truth, truth, 0.5)
	if c.TP != 1 {
		t.Fatalf("MatchBoxes = %+v", c)
	}
}
