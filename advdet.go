// Package advdet is a library reproduction of "Adaptive Vehicle
// Detection for Real-time Autonomous Driving System" (Hemmati,
// Biglari-Abhari, Niar — DATE 2019).
//
// It provides:
//
//   - the three detection pipelines the paper switches between
//     (HOG+SVM for day and dusk, a DBN-based taillight-pair detector
//     for dark) together with their trainers,
//   - a multi-scale HOG+SVM pedestrian detector (the static
//     partition),
//   - a cycle-approximate Zynq SoC model with the paper's partial
//     reconfiguration controllers (PCAP, AXI HWICAP, ZyCAP-style, and
//     the paper's DMA-ICAP controller), and
//   - the adaptive system tying them together: a light-condition
//     monitor with hysteresis, two partial configurations staged in
//     PL-side DDR, and reconfiguration that drops exactly one vehicle
//     frame at 50 fps while pedestrian detection keeps running.
//
// Quick start — one engine, many camera streams:
//
//	dets, err := advdet.TrainDetectors(1, advdet.Fast)
//	if err != nil { ... }
//	eng := advdet.NewEngine(dets)
//	defer eng.Close()
//	cam, err := eng.NewStream(advdet.WithStreamName("cam-front"), advdet.WithStreamFPS(50))
//	if err != nil { ... }
//	scene := advdet.RenderScene(2, 640, 360, advdet.Dark)
//	res, err := cam.Process(ctx, scene)
//	if err != nil { ... }
//
// The Engine owns everything shared and immutable (trained models,
// pooled scan scratch, the bounded worker pool); each Stream owns one
// camera's adaptive state (condition monitor, reconfiguration state
// machine, slot-deadline accounting, metrics). Beyond capacity,
// Process fails fast with ErrOverloaded instead of queueing.
//
// For a single camera without the fleet machinery there is NewSystem,
// which boots a self-contained System and spawns no goroutines:
//
//	sys, err := advdet.NewSystem(dets, advdet.WithFPS(50), advdet.WithParallelism(0))
//	res, err := sys.ProcessFrame(scene)
//
// ProcessFrameCtx/RunScenarioCtx accept a context for cancellation
// mid-frame; a deadline bounds the frame budget. Detection scans fan
// out over a worker pool (WithParallelism) with output identical to
// the serial path.
//
// The synthetic dataset and scene generators stand in for the UPM,
// SYSU and iROADS datasets of the paper; see DESIGN.md for the
// substitution rationale.
package advdet

import (
	"io"
	"time"

	"advdet/internal/adaptive"
	"advdet/internal/eval"
	"advdet/internal/fault"
	"advdet/internal/img"
	"advdet/internal/ledger"
	"advdet/internal/metrics"
	"advdet/internal/pipeline"
	"advdet/internal/pr"
	"advdet/internal/soc"
	"advdet/internal/synth"
	"advdet/internal/track"
)

// Lighting conditions.
type Condition = synth.Condition

// The three conditions of the paper.
const (
	Day  = synth.Day
	Dusk = synth.Dusk
	Dark = synth.Dark
)

// Re-exported core types. The aliases expose the full method sets of
// the internal implementations.
type (
	// Detection is one detected object (vehicle or pedestrian).
	Detection = pipeline.Detection
	// Rect is an axis-aligned box in frame coordinates.
	Rect = img.Rect
	// Scene is a rendered frame with ground truth and a sensor value.
	Scene = synth.Scene
	// Scenario is a timed multi-segment drive.
	Scenario = synth.Scenario
	// System is the adaptive detection system.
	System = adaptive.System
	// Detectors bundles the trained models a System switches between.
	Detectors = adaptive.Detectors
	// SystemOptions configures a System.
	SystemOptions = adaptive.Options
	// FrameResult is the per-frame output of a System.
	FrameResult = adaptive.FrameResult
	// Stats are the accumulated counters of a System or Stream.
	Stats = adaptive.Stats
	// ConfigID names a fabric configuration (day-dusk or dark) as
	// reported by System.Loaded and Stream.Loaded.
	ConfigID = adaptive.ConfigID
	// Confusion holds TP/TN/FP/FN counts with the paper's accuracy
	// definition (Eq. 1).
	Confusion = eval.Confusion
	// Track is one tracked object (when tracking is enabled).
	Track = track.Track
	// Drive is a temporally coherent scene sequence for tracking.
	Drive = synth.Drive
	// MetricsSnapshot is the exported state of a System's telemetry
	// registry (see WithMetrics and System.Snapshot).
	MetricsSnapshot = metrics.Snapshot
	// FaultPlan is a deterministic, seedable fault injector for the
	// reconfiguration datapath (see NewFaultPlan and WithFaultPlan).
	FaultPlan = fault.Plan
	// RetryPolicy bounds the reconfiguration watchdog and retry/backoff
	// loop, in simulated picoseconds (see WithRetryPolicy).
	RetryPolicy = adaptive.RetryPolicy
	// Mode is the resilience state a System reports (see System.Mode
	// and FrameResult.Mode).
	Mode = adaptive.Mode
	// FaultRecord is one reconfiguration fault in Stats.FaultLog; its
	// Err wraps the typed sentinels for errors.Is dispatch.
	// Stats.FaultLog is a derived view of the typed event stream (the
	// EvFault events carrying an error); subscribe an EventSink for
	// the full stream.
	FaultRecord = adaptive.FaultRecord
)

// The unified typed event stream: every frame verdict, model select,
// reconfiguration outcome, fault and mode transition a System decides
// or suffers, as one subscribable sum type. Attach consumers with
// WithEventSink / WithStreamEventSink; the tamper-evident ledger
// (WithLedger / WithStreamLedger) consumes the same stream.
type (
	// Event is one typed event: Kind selects the active payload, and
	// every event carries its stream id, frame index and
	// simulated-picosecond timestamp.
	Event = adaptive.Event
	// EventKind discriminates the Event sum (EvFrame, EvModelSwitch,
	// EvReconfig, EvFault, EvModeChange).
	EventKind = adaptive.EventKind
	// EventSink receives a stream's events, synchronously and in
	// deterministic per-stream order.
	EventSink = adaptive.EventSink
	// EventLog is a ready-made concurrent recording sink (see
	// NewEventLog).
	EventLog = adaptive.EventLog
	// FrameEvent is the EvFrame payload: one frame's verdict.
	FrameEvent = adaptive.FrameEvent
	// ModelSwitchEvent is the EvModelSwitch payload: a day<->dusk BRAM
	// model select.
	ModelSwitchEvent = adaptive.ModelSwitchEvent
	// ReconfigEvent is the EvReconfig payload: one reconfiguration
	// state-machine transition.
	ReconfigEvent = adaptive.ReconfigEvent
	// FaultEvent is the EvFault payload; Err wraps the typed sentinels
	// for errors.Is dispatch and Code is the encodable classification.
	FaultEvent = adaptive.FaultEvent
	// ModeChangeEvent is the EvModeChange payload.
	ModeChangeEvent = adaptive.ModeChangeEvent
	// ReconfigPhase names the transition an EvReconfig event reports.
	ReconfigPhase = adaptive.ReconfigPhase
	// FaultCode classifies an EvFault event.
	FaultCode = adaptive.FaultCode
)

// Event kinds.
const (
	EvFrame       = adaptive.EvFrame
	EvModelSwitch = adaptive.EvModelSwitch
	EvReconfig    = adaptive.EvReconfig
	EvFault       = adaptive.EvFault
	EvModeChange  = adaptive.EvModeChange
)

// Reconfiguration phases of an EvReconfig event.
const (
	ReconfigRequested      = adaptive.ReconfigRequested
	ReconfigLaunched       = adaptive.ReconfigLaunched
	ReconfigCompleted      = adaptive.ReconfigCompleted
	ReconfigRetryScheduled = adaptive.ReconfigRetryScheduled
	ReconfigCancelled      = adaptive.ReconfigCancelled
)

// Fault codes of an EvFault event.
const (
	FaultCodeVerify     = adaptive.FaultCodeVerify
	FaultCodeTimeout    = adaptive.FaultCodeTimeout
	FaultCodeBusy       = adaptive.FaultCodeBusy
	FaultCodeBankSelect = adaptive.FaultCodeBankSelect
	FaultCodeIRQDrop    = adaptive.FaultCodeIRQDrop
	FaultCodeOther      = adaptive.FaultCodeOther
)

// NewEventLog returns an empty recording sink: it accumulates every
// event it receives, is safe across streams, and reads back copies
// (Events, Kind, FaultRecords) that never alias its internal state.
func NewEventLog() *EventLog { return adaptive.NewEventLog() }

// The tamper-evident detection ledger: an append-only, hash-chained
// log of the event stream, batched into Merkle trees under one anchor
// chain. See WithLedger, WithStreamLedger, Engine.Ledger and
// cmd/ledgerverify.
type (
	// Ledger is the append-only hash-chained event ledger.
	Ledger = ledger.Ledger
	// LedgerConfig shapes the ledger's size-or-deadline batch sealing.
	LedgerConfig = ledger.Config
	// LedgerBatch is one sealed Merkle batch.
	LedgerBatch = ledger.Batch
	// LedgerProof is an inclusion proof from one ledgered event to its
	// batch's sealed Merkle root.
	LedgerProof = ledger.Proof
	// LedgerLog is a ledger read back from its serialized form (see
	// ReadLedgerLog and VerifyLedgerLog).
	LedgerLog = ledger.Log
	// LedgerReport is the outcome of a full offline verification pass,
	// pinpointing the first tampered record and batch if any.
	LedgerReport = ledger.Report
	// LedgerHash is a SHA-256 digest (chain head, Merkle root, anchor).
	LedgerHash = ledger.Hash
)

// NewLedger builds an empty standalone ledger; the zero LedgerConfig
// selects the defaults (64-event batches, 250 ms simulated-time span).
func NewLedger(cfg LedgerConfig) *Ledger { return ledger.New(cfg) }

// ReadLedgerLog parses a ledger serialized with Ledger.WriteTo.
func ReadLedgerLog(r io.Reader) (*LedgerLog, error) { return ledger.ReadLog(r) }

// VerifyLedgerLog recomputes every hash layer of a recorded ledger
// from the raw event bytes — per-stream chains, per-batch Merkle
// roots, the anchor chain — trusting nothing but the payloads.
func VerifyLedgerLog(lg *LedgerLog) LedgerReport { return ledger.VerifyLog(lg) }

// Resilience modes: how well the reconfigurable partition is doing.
// The static (pedestrian) partition runs every frame in every mode.
const (
	ModeNominal    = adaptive.ModeNominal
	ModeRecovering = adaptive.ModeRecovering
	ModeDegraded   = adaptive.ModeDegraded
)

// IRQPRDone is the platform interrupt line asserted when a partial
// reconfiguration completes — the line to name in FaultPlan.DropIRQ.
const IRQPRDone = soc.IRQPRDone

// Typed reconfiguration failures, for errors.Is against
// Stats.FaultLog entries and controller errors.
var (
	// ErrReconfigBusy: a reconfiguration was requested while one was
	// already in flight on the same controller.
	ErrReconfigBusy = pr.ErrBusy
	// ErrNotStaged: the named bitstream is not resident in PL DDR.
	ErrNotStaged = pr.ErrNotStaged
	// ErrVerify: a staged bitstream failed its CRC check before
	// streaming.
	ErrVerify = pr.ErrVerify
	// ErrReconfigTimeout: the PR-done interrupt was not seen within the
	// watchdog deadline and the attempt was abandoned.
	ErrReconfigTimeout = pr.ErrTimeout
	// ErrBankSelect: a BRAM model-bank select write failed; the
	// previous model keeps serving.
	ErrBankSelect = adaptive.ErrBankSelect
)

// NewFaultPlan returns an empty fault plan seeded for its
// probabilistic (Chaos) rules. Arm deterministic rules with
// CorruptStage, StallDMA, AbortDMA, DropIRQ and FailBankSelect, then
// install the plan with WithFaultPlan. A nil plan injects nothing at
// zero cost.
func NewFaultPlan(seed uint64) *FaultPlan { return fault.NewPlan(seed) }

// DefaultRetryPolicy returns the retry policy matched to the paper's
// timing: a 31 ms PR-done watchdog (1.5x the ~20.5 ms stream), three
// retries, and 2 ms exponential backoff capped at 40 ms.
func DefaultRetryPolicy() RetryPolicy { return adaptive.DefaultRetryPolicy() }

// DefaultSystemOptions returns the paper's operating point: 50 fps,
// ~8 MB partial bitstreams, booting in day condition.
func DefaultSystemOptions() SystemOptions { return adaptive.DefaultOptions() }

// NewSystem boots a single-stream adaptive system with both partial
// bitstreams staged in PL-side DDR. With no options it runs at the
// paper's operating point (DefaultSystemOptions); pass functional
// options to deviate, or WithOptions to install a hand-built
// SystemOptions.
//
// NewSystem is the single-stream convenience path: it builds a private
// shared engine (detectors + scan-lane pool) for its one stream and
// spawns no goroutines, so nothing needs closing. To serve many camera
// streams over one set of trained models and one worker pool, use
// NewEngine and Engine.NewStream instead.
func NewSystem(dets Detectors, opts ...Option) (*System, error) {
	opt := DefaultSystemOptions()
	for _, o := range opts {
		o(&opt)
	}
	eng := adaptive.NewEngine(dets, adaptive.EngineConfig{Parallelism: opt.Parallelism})
	return eng.NewSystem(opt)
}

// RenderScene renders one synthetic road scene of the given size and
// condition with ground-truth boxes and a sensor reading.
func RenderScene(seed uint64, w, h int, cond Condition) *Scene {
	return synth.RenderScene(synth.NewRNG(seed), synth.DefaultSceneConfig(w, h, cond))
}

// TunnelTransit returns the paper's motivating drive scenario:
// day -> lit tunnel (dusk) -> day -> sunset -> dark.
func TunnelTransit(seed uint64, w, h, fps int) *Scenario {
	return synth.TunnelTransit(seed, w, h, fps)
}

// NightHighway returns an all-dark drive scenario.
func NightHighway(seed uint64, w, h, fps int) *Scenario {
	return synth.NightHighway(seed, w, h, fps)
}

// NewDrive returns a temporally coherent drive: the same vehicles and
// pedestrians persist frame to frame, enabling tracking.
func NewDrive(seed uint64, w, h int, cond Condition, nVehicles, nPeds int) *Drive {
	return synth.NewDrive(seed, w, h, cond, nVehicles, nPeds)
}

// MatchBoxes IoU-matches detections against ground truth.
func MatchBoxes(truth, detected []Rect, iouThresh float64) Confusion {
	return eval.MatchBoxes(truth, detected, iouThresh)
}

// ReconfigResult is one controller's measured reconfiguration
// performance.
type ReconfigResult struct {
	// Controller is the controller name ("pcap", "axi-hwicap",
	// "zycap", "dma-icap").
	Controller string
	// MBPerSec is the modeled bitstream throughput.
	MBPerSec float64
	// Elapsed is the modeled wall time to load the whole bitstream.
	Elapsed time.Duration
}

// ReconfigOption configures a ReconfigThroughputs measurement.
type ReconfigOption func(*reconfigConfig)

type reconfigConfig struct{ repeats int }

// WithMeasureRepeats averages each controller's measurement over n
// runs (each on a fresh platform). The model is deterministic today,
// so repeats tighten nothing yet; the knob keeps the bench surface
// stable for models with contention jitter.
func WithMeasureRepeats(n int) ReconfigOption {
	return func(c *reconfigConfig) { c.repeats = n }
}

// ReconfigThroughputs measures all four reconfiguration controllers
// on a bitstream of the given size — the §IV-A comparison. Results
// are ordered as pr.All() lists the controllers (slowest mechanism
// first, the paper's DMA-ICAP last), so output is stable across runs.
func ReconfigThroughputs(bytes int, opts ...ReconfigOption) ([]ReconfigResult, error) {
	cfg := reconfigConfig{repeats: 1}
	for _, o := range opts {
		o(&cfg)
	}
	out := make([]ReconfigResult, 0, 4)
	for _, ctrl := range pr.All() {
		res, err := pr.MeasureN(ctrl, bytes, cfg.repeats)
		if err != nil {
			return nil, err
		}
		out = append(out, ReconfigResult{
			Controller: res.Controller,
			MBPerSec:   res.MBPerSec,
			Elapsed:    time.Duration(res.PS / 1000), // ps -> ns
		})
	}
	return out, nil
}

// PipelineFPS returns the modeled detection frame rate for a frame
// size on the 125 MHz fabric (~50 fps at 1920x1080).
func PipelineFPS(w, h int) float64 {
	return soc.NewDetectionPipeline("vehicle").FPS(w, h)
}
