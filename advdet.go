// Package advdet is a library reproduction of "Adaptive Vehicle
// Detection for Real-time Autonomous Driving System" (Hemmati,
// Biglari-Abhari, Niar — DATE 2019).
//
// It provides:
//
//   - the three detection pipelines the paper switches between
//     (HOG+SVM for day and dusk, a DBN-based taillight-pair detector
//     for dark) together with their trainers,
//   - a multi-scale HOG+SVM pedestrian detector (the static
//     partition),
//   - a cycle-approximate Zynq SoC model with the paper's partial
//     reconfiguration controllers (PCAP, AXI HWICAP, ZyCAP-style, and
//     the paper's DMA-ICAP controller), and
//   - the adaptive system tying them together: a light-condition
//     monitor with hysteresis, two partial configurations staged in
//     PL-side DDR, and reconfiguration that drops exactly one vehicle
//     frame at 50 fps while pedestrian detection keeps running.
//
// Quick start:
//
//	dets, err := advdet.TrainDetectors(1, advdet.Fast)
//	if err != nil { ... }
//	sys, err := advdet.NewSystem(dets, advdet.WithFPS(50), advdet.WithParallelism(0))
//	if err != nil { ... }
//	scene := advdet.RenderScene(2, 640, 360, advdet.Dark)
//	res, err := sys.ProcessFrame(scene)
//	if err != nil { ... }
//
// ProcessFrameCtx/RunScenarioCtx accept a context for cancellation
// mid-frame; a deadline bounds the frame budget. Detection scans fan
// out over a worker pool (WithParallelism) with output identical to
// the serial path.
//
// The synthetic dataset and scene generators stand in for the UPM,
// SYSU and iROADS datasets of the paper; see DESIGN.md for the
// substitution rationale.
package advdet

import (
	"time"

	"advdet/internal/adaptive"
	"advdet/internal/eval"
	"advdet/internal/img"
	"advdet/internal/metrics"
	"advdet/internal/pipeline"
	"advdet/internal/pr"
	"advdet/internal/soc"
	"advdet/internal/synth"
	"advdet/internal/track"
)

// Lighting conditions.
type Condition = synth.Condition

// The three conditions of the paper.
const (
	Day  = synth.Day
	Dusk = synth.Dusk
	Dark = synth.Dark
)

// Re-exported core types. The aliases expose the full method sets of
// the internal implementations.
type (
	// Detection is one detected object (vehicle or pedestrian).
	Detection = pipeline.Detection
	// Rect is an axis-aligned box in frame coordinates.
	Rect = img.Rect
	// Scene is a rendered frame with ground truth and a sensor value.
	Scene = synth.Scene
	// Scenario is a timed multi-segment drive.
	Scenario = synth.Scenario
	// System is the adaptive detection system.
	System = adaptive.System
	// Detectors bundles the trained models a System switches between.
	Detectors = adaptive.Detectors
	// SystemOptions configures a System.
	SystemOptions = adaptive.Options
	// FrameResult is the per-frame output of a System.
	FrameResult = adaptive.FrameResult
	// Confusion holds TP/TN/FP/FN counts with the paper's accuracy
	// definition (Eq. 1).
	Confusion = eval.Confusion
	// Track is one tracked object (when tracking is enabled).
	Track = track.Track
	// Drive is a temporally coherent scene sequence for tracking.
	Drive = synth.Drive
	// MetricsSnapshot is the exported state of a System's telemetry
	// registry (see WithMetrics and System.Snapshot).
	MetricsSnapshot = metrics.Snapshot
)

// DefaultSystemOptions returns the paper's operating point: 50 fps,
// ~8 MB partial bitstreams, booting in day condition.
func DefaultSystemOptions() SystemOptions { return adaptive.DefaultOptions() }

// NewSystem boots an adaptive system with both partial bitstreams
// staged in PL-side DDR. With no options it runs at the paper's
// operating point (DefaultSystemOptions); pass functional options to
// deviate, or WithOptions to install a hand-built SystemOptions.
func NewSystem(dets Detectors, opts ...Option) (*System, error) {
	opt := DefaultSystemOptions()
	for _, o := range opts {
		o(&opt)
	}
	return adaptive.New(dets, opt)
}

// RenderScene renders one synthetic road scene of the given size and
// condition with ground-truth boxes and a sensor reading.
func RenderScene(seed uint64, w, h int, cond Condition) *Scene {
	return synth.RenderScene(synth.NewRNG(seed), synth.DefaultSceneConfig(w, h, cond))
}

// TunnelTransit returns the paper's motivating drive scenario:
// day -> lit tunnel (dusk) -> day -> sunset -> dark.
func TunnelTransit(seed uint64, w, h, fps int) *Scenario {
	return synth.TunnelTransit(seed, w, h, fps)
}

// NightHighway returns an all-dark drive scenario.
func NightHighway(seed uint64, w, h, fps int) *Scenario {
	return synth.NightHighway(seed, w, h, fps)
}

// NewDrive returns a temporally coherent drive: the same vehicles and
// pedestrians persist frame to frame, enabling tracking.
func NewDrive(seed uint64, w, h int, cond Condition, nVehicles, nPeds int) *Drive {
	return synth.NewDrive(seed, w, h, cond, nVehicles, nPeds)
}

// MatchBoxes IoU-matches detections against ground truth.
func MatchBoxes(truth, detected []Rect, iouThresh float64) Confusion {
	return eval.MatchBoxes(truth, detected, iouThresh)
}

// ReconfigResult is one controller's measured reconfiguration
// performance.
type ReconfigResult struct {
	// Controller is the controller name ("pcap", "axi-hwicap",
	// "zycap", "dma-icap").
	Controller string
	// MBPerSec is the modeled bitstream throughput.
	MBPerSec float64
	// Elapsed is the modeled wall time to load the whole bitstream.
	Elapsed time.Duration
}

// ReconfigThroughputs measures all four reconfiguration controllers
// on a bitstream of the given size — the §IV-A comparison. Results
// are ordered as pr.All() lists the controllers (slowest mechanism
// first, the paper's DMA-ICAP last), so output is stable across runs.
func ReconfigThroughputs(bytes int) ([]ReconfigResult, error) {
	out := make([]ReconfigResult, 0, 4)
	for _, ctrl := range pr.All() {
		res, err := pr.Measure(ctrl, bytes)
		if err != nil {
			return nil, err
		}
		out = append(out, ReconfigResult{
			Controller: res.Controller,
			MBPerSec:   res.MBPerSec,
			Elapsed:    time.Duration(res.PS / 1000), // ps -> ns
		})
	}
	return out, nil
}

// ReconfigThroughputsMap reports MB/s keyed by controller name.
//
// Deprecated: use ReconfigThroughputs, which preserves measurement
// order and carries elapsed time.
func ReconfigThroughputsMap(bytes int) (map[string]float64, error) {
	results, err := ReconfigThroughputs(bytes)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(results))
	for _, r := range results {
		out[r.Controller] = r.MBPerSec
	}
	return out, nil
}

// PipelineFPS returns the modeled detection frame rate for a frame
// size on the 125 MHz fabric (~50 fps at 1920x1080).
func PipelineFPS(w, h int) float64 {
	return soc.NewDetectionPipeline("vehicle").FPS(w, h)
}
