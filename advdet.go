// Package advdet is a library reproduction of "Adaptive Vehicle
// Detection for Real-time Autonomous Driving System" (Hemmati,
// Biglari-Abhari, Niar — DATE 2019).
//
// It provides:
//
//   - the three detection pipelines the paper switches between
//     (HOG+SVM for day and dusk, a DBN-based taillight-pair detector
//     for dark) together with their trainers,
//   - a multi-scale HOG+SVM pedestrian detector (the static
//     partition),
//   - a cycle-approximate Zynq SoC model with the paper's partial
//     reconfiguration controllers (PCAP, AXI HWICAP, ZyCAP-style, and
//     the paper's DMA-ICAP controller), and
//   - the adaptive system tying them together: a light-condition
//     monitor with hysteresis, two partial configurations staged in
//     PL-side DDR, and reconfiguration that drops exactly one vehicle
//     frame at 50 fps while pedestrian detection keeps running.
//
// Quick start:
//
//	dets, err := advdet.TrainDetectors(1, advdet.Fast)
//	if err != nil { ... }
//	sys, err := advdet.NewSystem(dets, advdet.DefaultSystemOptions())
//	if err != nil { ... }
//	scene := advdet.RenderScene(2, 640, 360, advdet.Dark)
//	res, err := sys.ProcessFrame(scene)
//	if err != nil { ... }
//
// The synthetic dataset and scene generators stand in for the UPM,
// SYSU and iROADS datasets of the paper; see DESIGN.md for the
// substitution rationale.
package advdet

import (
	"advdet/internal/adaptive"
	"advdet/internal/dbn"
	"advdet/internal/eval"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/pipeline"
	"advdet/internal/pr"
	"advdet/internal/soc"
	"advdet/internal/svm"
	"advdet/internal/synth"
	"advdet/internal/track"
)

// Lighting conditions.
type Condition = synth.Condition

// The three conditions of the paper.
const (
	Day  = synth.Day
	Dusk = synth.Dusk
	Dark = synth.Dark
)

// Re-exported core types. The aliases expose the full method sets of
// the internal implementations.
type (
	// Detection is one detected object (vehicle or pedestrian).
	Detection = pipeline.Detection
	// Rect is an axis-aligned box in frame coordinates.
	Rect = img.Rect
	// Scene is a rendered frame with ground truth and a sensor value.
	Scene = synth.Scene
	// Scenario is a timed multi-segment drive.
	Scenario = synth.Scenario
	// System is the adaptive detection system.
	System = adaptive.System
	// Detectors bundles the trained models a System switches between.
	Detectors = adaptive.Detectors
	// SystemOptions configures a System.
	SystemOptions = adaptive.Options
	// FrameResult is the per-frame output of a System.
	FrameResult = adaptive.FrameResult
	// Confusion holds TP/TN/FP/FN counts with the paper's accuracy
	// definition (Eq. 1).
	Confusion = eval.Confusion
	// Track is one tracked object (when tracking is enabled).
	Track = track.Track
	// Drive is a temporally coherent scene sequence for tracking.
	Drive = synth.Drive
)

// DefaultSystemOptions returns the paper's operating point: 50 fps,
// ~8 MB partial bitstreams, booting in day condition.
func DefaultSystemOptions() SystemOptions { return adaptive.DefaultOptions() }

// NewSystem boots an adaptive system with both partial bitstreams
// staged in PL-side DDR.
func NewSystem(dets Detectors, opt SystemOptions) (*System, error) {
	return adaptive.New(dets, opt)
}

// Quality selects a training budget.
type Quality int

const (
	// Fast trains on small synthetic sets — seconds, good enough for
	// examples and smoke tests.
	Fast Quality = iota
	// Full trains on the Table I-scale sets the benchmarks use.
	Full
)

// TrainDetectors trains every model the adaptive system needs from
// synthetic data: the day, dusk and combined HOG+SVM vehicle models,
// the pedestrian model (mixed conditions, as the static path runs day
// and night), and the dark pipeline's DBN and pair SVM.
//
// The returned Detectors uses the day model for day and the dusk
// model for dusk, mirroring the paper's two-models-in-BRAM design.
func TrainDetectors(seed uint64, q Quality) (Detectors, error) {
	nTrain, nWin := 80, 100
	if q == Full {
		nTrain, nWin = 300, 250
	}

	hogCfg := hog.DefaultConfig()
	svmOpts := svm.DefaultOptions()

	dayDS := synth.DayDataset(seed, 64, 64, nTrain, nTrain)
	duskDS := synth.DuskDataset(seed+1, 64, 64, nTrain, nTrain, 0)

	dayModel, err := pipeline.TrainVehicleSVM(dayDS, hogCfg, svmOpts)
	if err != nil {
		return Detectors{}, err
	}
	duskModel, err := pipeline.TrainVehicleSVM(duskDS, hogCfg, svmOpts)
	if err != nil {
		return Detectors{}, err
	}

	pedDay := synth.PedestrianDataset(seed+2, pipeline.PedWindowW, pipeline.PedWindowH, nTrain*5/8, nTrain*5/8, synth.Day)
	pedDusk := synth.PedestrianDataset(seed+3, pipeline.PedWindowW, pipeline.PedWindowH, nTrain*3/8, nTrain*3/8, synth.Dusk)
	pedDark := synth.PedestrianDataset(seed+4, pipeline.PedWindowW, pipeline.PedWindowH, nTrain*3/8, nTrain*3/8, synth.Dark)
	pedAll := pipeline.CombineDatasets("ped-all",
		pipeline.CombineDatasets("ped-dd", pedDay, pedDusk), pedDark)
	pedModel, err := pipeline.TrainPedestrianSVM(pedAll, hogCfg, svmOpts)
	if err != nil {
		return Detectors{}, err
	}

	dbnCfg := dbn.DefaultConfig()
	if q == Fast {
		dbnCfg.PretrainOpts.Epochs = 4
		dbnCfg.FineTuneIter = 30
	}
	darkDet, err := pipeline.TrainDarkDetector(seed+5, pipeline.DefaultDarkConfig(), dbnCfg, nWin)
	if err != nil {
		return Detectors{}, err
	}

	return Detectors{
		Day:        pipeline.NewDayDuskDetector(dayModel),
		Dusk:       pipeline.NewDayDuskDetector(duskModel),
		Dark:       darkDet,
		Pedestrian: pipeline.NewPedestrianDetector(pedModel),
	}, nil
}

// RenderScene renders one synthetic road scene of the given size and
// condition with ground-truth boxes and a sensor reading.
func RenderScene(seed uint64, w, h int, cond Condition) *Scene {
	return synth.RenderScene(synth.NewRNG(seed), synth.DefaultSceneConfig(w, h, cond))
}

// TunnelTransit returns the paper's motivating drive scenario:
// day -> lit tunnel (dusk) -> day -> sunset -> dark.
func TunnelTransit(seed uint64, w, h, fps int) *Scenario {
	return synth.TunnelTransit(seed, w, h, fps)
}

// NightHighway returns an all-dark drive scenario.
func NightHighway(seed uint64, w, h, fps int) *Scenario {
	return synth.NightHighway(seed, w, h, fps)
}

// NewDrive returns a temporally coherent drive: the same vehicles and
// pedestrians persist frame to frame, enabling tracking.
func NewDrive(seed uint64, w, h int, cond Condition, nVehicles, nPeds int) *Drive {
	return synth.NewDrive(seed, w, h, cond, nVehicles, nPeds)
}

// MatchBoxes IoU-matches detections against ground truth.
func MatchBoxes(truth, detected []Rect, iouThresh float64) Confusion {
	return eval.MatchBoxes(truth, detected, iouThresh)
}

// ReconfigThroughputs measures all four reconfiguration controllers
// on a bitstream of the given size and reports MB/s by controller
// name — the §IV-A comparison.
func ReconfigThroughputs(bytes int) (map[string]float64, error) {
	out := map[string]float64{}
	for _, ctrl := range pr.All() {
		res, err := pr.Measure(ctrl, bytes)
		if err != nil {
			return nil, err
		}
		out[res.Controller] = res.MBPerSec
	}
	return out, nil
}

// PipelineFPS returns the modeled detection frame rate for a frame
// size on the 125 MHz fabric (~50 fps at 1920x1080).
func PipelineFPS(w, h int) float64 {
	return soc.NewDetectionPipeline("vehicle").FPS(w, h)
}
