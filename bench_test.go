package advdet

// The benchmark harness: one benchmark per table/figure of the paper
// plus the ablations called out in DESIGN.md. Reproduction metrics
// (accuracy, MB/s, fps, ms) are attached via b.ReportMetric, so
// `go test -bench . -benchmem` regenerates the evaluation alongside
// the usual time/op numbers.

import (
	"context"
	"sync"
	"testing"

	"advdet/internal/dbn"
	"advdet/internal/eval"
	"advdet/internal/experiments"
	"advdet/internal/fpga"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/pipeline"
	"advdet/internal/pr"
	"advdet/internal/soc"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// Shared trained state, built lazily so cheap benches stay cheap.
var (
	benchOnce sync.Once
	benchDay  *pipeline.DayDuskDetector
	benchDark *pipeline.DarkDetector
	benchPed  *pipeline.PedestrianDetector
)

func benchDetectors(b *testing.B) (*pipeline.DayDuskDetector, *pipeline.DarkDetector, *pipeline.PedestrianDetector) {
	b.Helper()
	benchOnce.Do(func() {
		ds := synth.DayDataset(1, 64, 64, 100, 100)
		m, err := pipeline.TrainVehicleSVM(ds, hog.DefaultConfig(), svm.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		benchDay = pipeline.NewDayDuskDetector(m)

		cfg := pipeline.DefaultDarkConfig()
		cfg.Downsample = 1
		dbnCfg := dbn.DefaultConfig()
		dbnCfg.PretrainOpts.Epochs = 4
		dbnCfg.FineTuneIter = 30
		benchDark, err = pipeline.TrainDarkDetector(2, cfg, dbnCfg, 120)
		if err != nil {
			b.Fatal(err)
		}

		pd := synth.PedestrianDataset(3, pipeline.PedWindowW, pipeline.PedWindowH, 100, 100, synth.Day)
		pm, err := pipeline.TrainPedestrianSVM(pd, hog.DefaultConfig(), svm.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		benchPed = pipeline.NewPedestrianDetector(pm)
	})
	return benchDay, benchDark, benchPed
}

// BenchmarkTableI regenerates Table I at reduced size each iteration
// and reports the headline accuracies. The full-size table is
// `cmd/benchrepro -table1`.
func BenchmarkTableI(b *testing.B) {
	var rows []experiments.TableIRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableI(experiments.TableIOptions{Seed: 11, TrainN: 60, PaperCounts: false})
		if err != nil {
			b.Fatal(err)
		}
		if errs := experiments.TableIShapeErrors(rows); len(errs) > 0 {
			b.Fatalf("Table I shape violated: %v", errs)
		}
	}
	for _, r := range rows {
		if r.Model == "day" && r.Test == "day" {
			b.ReportMetric(100*r.Got.Accuracy(), "day/day_acc_%")
		}
		if r.Model == "dusk" && r.Test == "day" {
			b.ReportMetric(100*r.Got.Accuracy(), "dusk/day_acc_%")
		}
		if r.Model == "combined" && r.Test == "dusk" {
			b.ReportMetric(100*r.Got.Accuracy(), "comb/dusk_acc_%")
		}
	}
}

// BenchmarkTableII regenerates the resource-utilization table and
// asserts it matches the paper when rounded.
func BenchmarkTableII(b *testing.B) {
	var rows []fpga.UtilRow
	for i := 0; i < b.N; i++ {
		rows = fpga.TableII()
	}
	b.ReportMetric(rows[4].Util[0], "total_LUT_%")
	b.ReportMetric(rows[4].Util[3], "total_DSP_%")
}

// BenchmarkFig1Training measures the Fig. 1 flow: HOG extraction over
// a training set plus LibLINEAR-style SVM training.
func BenchmarkFig1Training(b *testing.B) {
	ds := synth.DayDataset(7, 64, 64, 60, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.TrainVehicleSVM(ds, hog.DefaultConfig(), svm.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2DayDuskPipeline runs the day/dusk detector over a
// 640x360 frame (software path) and reports the SoC model's frame
// rate for the hardware pipeline at 1080p.
func BenchmarkFig2DayDuskPipeline(b *testing.B) {
	day, _, _ := benchDetectors(b)
	sc := synth.RenderScene(synth.NewRNG(9), synth.DefaultSceneConfig(640, 360, synth.Day))
	gray := img.RGBToGray(sc.Frame)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(day.Detect(gray))
	}
	_ = n
	b.ReportMetric(soc.NewDetectionPipeline("vehicle").FPS(1920, 1080), "modeled_fps_1080p")
}

// BenchmarkFig34DarkPipeline runs the full dark pipeline (threshold,
// downsample, closing, DBN scan, pair matching) over a 640x360 night
// frame.
func BenchmarkFig34DarkPipeline(b *testing.B) {
	_, dark, _ := benchDetectors(b)
	sc := synth.RenderScene(synth.NewRNG(10),
		synth.SceneConfig{W: 640, H: 360, Cond: synth.Dark, NumVehicles: 2, RoadLights: 3, OncomingHeadlights: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dark.Detect(sc.Frame)
	}
}

// BenchmarkFig5NightQualitative renders a night frame, detects and
// draws overlays — the Fig. 5 output path.
func BenchmarkFig5NightQualitative(b *testing.B) {
	_, dark, _ := benchDetectors(b)
	scenario := synth.NightHighway(12, 640, 360, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := scenario.FrameAt(i % scenario.TotalFrames())
		dets := dark.Detect(sc.Frame)
		overlay := sc.Frame.Clone()
		for _, d := range dets {
			img.DrawRect(overlay, d.Box, 255, 60, 60, 2)
		}
	}
}

// BenchmarkFig6SystemFrame streams one 1080p frame through the Fig. 6
// platform (input DMA over HP, pipeline, result DMA, IRQ) and reports
// the modeled frame rate.
func BenchmarkFig6SystemFrame(b *testing.B) {
	var fps float64
	for i := 0; i < b.N; i++ {
		z := soc.NewZynq()
		finish := z.StreamFrame(z.VehiclePipe, 1920, 1080, 3, z.HP0, soc.IRQVehicleDMA, nil)
		z.Sim.Run()
		fps = 1 / soc.Seconds(finish)
	}
	b.ReportMetric(fps, "modeled_fps")
}

// BenchmarkFig7PRController reconfigures with the paper's DMA-ICAP
// controller (Fig. 7) and reports throughput and latency.
func BenchmarkFig7PRController(b *testing.B) {
	bytes := fpga.DefaultFloorplan().PartialBitstreamBytes()
	var res pr.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = pr.Measure(pr.NewDMAICAP(), bytes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MBPerSec, "MB/s")
	b.ReportMetric(soc.Seconds(res.PS)*1e3, "reconfig_ms")
}

// BenchmarkReconfigThroughput measures all four controllers (§IV-A).
func BenchmarkReconfigThroughput(b *testing.B) {
	bytes := fpga.DefaultFloorplan().PartialBitstreamBytes()
	for _, name := range []string{"axi-hwicap", "pcap", "zycap", "dma-icap"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var res pr.Result
			for i := 0; i < b.N; i++ {
				ctrl := controllerByName(b, name)
				var err error
				res, err = pr.Measure(ctrl, bytes)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MBPerSec, "MB/s")
			b.ReportMetric(experiments.PaperThroughputs[name], "paper_MB/s")
		})
	}
}

func controllerByName(b *testing.B, name string) pr.Controller {
	b.Helper()
	for _, c := range pr.All() {
		if c.Name() == name {
			return c
		}
	}
	b.Fatalf("unknown controller %q", name)
	return nil
}

// BenchmarkReconfigLatency measures the §IV-B transition cost on the
// adaptive system: ~20 ms and one dropped vehicle frame at 50 fps.
func BenchmarkReconfigLatency(b *testing.B) {
	var ms float64
	var dropped int
	for i := 0; i < b.N; i++ {
		var err error
		ms, dropped, err = experiments.TransitionCost()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ms, "reconfig_ms")
	b.ReportMetric(float64(dropped), "frames_dropped")
}

// BenchmarkDarkAccuracy evaluates the dark pipeline on very dark
// crops (§III-B reports 95%).
func BenchmarkDarkAccuracy(b *testing.B) {
	_, dark, _ := benchDetectors(b)
	ds := synth.NewDarkDataset(20, 96, 96, 40, 40)
	var c eval.Confusion
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c = eval.Confusion{}
		for _, p := range ds.Pos {
			c.Record(true, dark.ClassifyCrop(p))
		}
		for _, n := range ds.Neg {
			c.Record(false, dark.ClassifyCrop(n))
		}
	}
	b.ReportMetric(100*c.Accuracy(), "dark_acc_%")
}

// BenchmarkFrameRate reports the §V frame-rate model.
func BenchmarkFrameRate(b *testing.B) {
	var fps float64
	for i := 0; i < b.N; i++ {
		fps = experiments.FrameRate()
	}
	b.ReportMetric(fps, "fps_1080p")
}

// --- Ablations (DESIGN.md §5) ---

// darkWithConfig retrains nothing: it clones the shared dark detector
// and flips pipeline switches.
func darkWithConfig(b *testing.B, mutate func(*pipeline.DarkConfig)) *pipeline.DarkDetector {
	_, dark, _ := benchDetectors(b)
	cp := *dark
	mutate(&cp.Cfg)
	return &cp
}

func darkFalsePositives(det *pipeline.DarkDetector, n int) int {
	fp := 0
	for s := uint64(0); s < uint64(n); s++ {
		crop := synth.NegativeCrop(synth.NewRNG(7000+s), 96, 96, synth.Dark)
		if det.ClassifyCrop(crop) {
			fp++
		}
	}
	return fp
}

func darkRecallCount(det *pipeline.DarkDetector, n int) int {
	tp := 0
	for s := uint64(0); s < uint64(n); s++ {
		crop := synth.VehicleCrop(synth.NewRNG(8000+s), 96, 96, synth.Dark)
		if det.ClassifyCrop(crop) {
			tp++
		}
	}
	return tp
}

// BenchmarkAblationThreshold compares the dual (chroma+luma)
// threshold against luma-only: white headlights/street lights pass a
// luma-only gate and inflate false pairs.
func BenchmarkAblationThreshold(b *testing.B) {
	full := darkWithConfig(b, func(*pipeline.DarkConfig) {})
	lumaOnly := darkWithConfig(b, func(c *pipeline.DarkConfig) { c.UseChroma = false })
	var fpFull, fpLuma int
	for i := 0; i < b.N; i++ {
		fpFull = darkFalsePositives(full, 30)
		fpLuma = darkFalsePositives(lumaOnly, 30)
	}
	b.ReportMetric(float64(fpFull), "fp_dual/30")
	b.ReportMetric(float64(fpLuma), "fp_luma_only/30")
}

// BenchmarkAblationClosing compares recall with and without the
// morphological closing stage.
func BenchmarkAblationClosing(b *testing.B) {
	with := darkWithConfig(b, func(*pipeline.DarkConfig) {})
	without := darkWithConfig(b, func(c *pipeline.DarkConfig) { c.UseClosing = false })
	var tpWith, tpWithout int
	for i := 0; i < b.N; i++ {
		tpWith = darkRecallCount(with, 30)
		tpWithout = darkRecallCount(without, 30)
	}
	b.ReportMetric(float64(tpWith), "tp_closing/30")
	b.ReportMetric(float64(tpWithout), "tp_no_closing/30")
}

// BenchmarkAblationPairMatch compares the trained pair SVM against
// the fixed geometric gate.
func BenchmarkAblationPairMatch(b *testing.B) {
	svmGate := darkWithConfig(b, func(*pipeline.DarkConfig) {})
	geoGate := darkWithConfig(b, func(c *pipeline.DarkConfig) { c.UsePairSVM = false })
	var accSVM, accGeo float64
	for i := 0; i < b.N; i++ {
		tp1, fp1 := darkRecallCount(svmGate, 30), darkFalsePositives(svmGate, 30)
		tp2, fp2 := darkRecallCount(geoGate, 30), darkFalsePositives(geoGate, 30)
		accSVM = float64(tp1+30-fp1) / 60
		accGeo = float64(tp2+30-fp2) / 60
	}
	b.ReportMetric(100*accSVM, "acc_svm_%")
	b.ReportMetric(100*accGeo, "acc_geom_%")
}

// BenchmarkAblationDBNSize trains DBNs of three hidden geometries and
// reports held-out window accuracy for each (the paper picked 20-8).
func BenchmarkAblationDBNSize(b *testing.B) {
	sizes := [][]int{{10, 4}, {20, 8}, {40, 16}}
	testX, testL := synth.TaillightWindowSet(999, 50)
	accs := make([]float64, len(sizes))
	for i := 0; i < b.N; i++ {
		for j, hidden := range sizes {
			cfg := dbn.DefaultConfig()
			cfg.Hidden = hidden
			cfg.PretrainOpts.Epochs = 3
			cfg.FineTuneIter = 20
			X, labels := synth.TaillightWindowSet(50, 80)
			net, err := dbn.Train(X, labels, cfg, synth.NewRNG(51))
			if err != nil {
				b.Fatal(err)
			}
			accs[j] = net.Accuracy(testX, testL)
		}
	}
	b.ReportMetric(100*accs[0], "acc_10-4_%")
	b.ReportMetric(100*accs[1], "acc_20-8_%")
	b.ReportMetric(100*accs[2], "acc_40-16_%")
}

// BenchmarkAblationPRSource compares bitstream sourcing: PS DDR via
// the central interconnect (PCAP) vs PL DDR via the local DMA (the
// design choice at the heart of §IV-A).
func BenchmarkAblationPRSource(b *testing.B) {
	bytes := fpga.DefaultFloorplan().PartialBitstreamBytes()
	var psSide, plSide pr.Result
	for i := 0; i < b.N; i++ {
		var err error
		psSide, err = pr.Measure(&pr.PCAP{}, bytes)
		if err != nil {
			b.Fatal(err)
		}
		plSide, err = pr.Measure(pr.NewDMAICAP(), bytes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(psSide.MBPerSec, "ps-ddr_MB/s")
	b.ReportMetric(plSide.MBPerSec, "pl-ddr_MB/s")
	b.ReportMetric(plSide.MBPerSec/psSide.MBPerSec, "speedup")
}

// --- Baseline comparisons (related-work implementations) ---

// BenchmarkBaselineDarkDBNvsHaar compares the paper's DBN dark
// pipeline with a VeDANt-style AdaBoost+Haar baseline (related work
// [11]) on identical very dark crops.
func BenchmarkBaselineDarkDBNvsHaar(b *testing.B) {
	var dbnC, haarC eval.Confusion
	for i := 0; i < b.N; i++ {
		var err error
		dbnC, haarC, err = experiments.BaselineDark(41, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*dbnC.Accuracy(), "dbn_acc_%")
	b.ReportMetric(100*haarC.Accuracy(), "haar_acc_%")
}

// BenchmarkFeatureHOGvsPIHOG compares plain HOG with the
// position/intensity-augmented PIHOG (related work [8]) at dusk.
func BenchmarkFeatureHOGvsPIHOG(b *testing.B) {
	var hogC, piC eval.Confusion
	for i := 0; i < b.N; i++ {
		var err error
		hogC, piC, err = experiments.FeatureComparison(43, 60, 40)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*hogC.Accuracy(), "hog_acc_%")
	b.ReportMetric(100*piC.Accuracy(), "pihog_acc_%")
}

// BenchmarkTrackingGain measures scene-level recall with and without
// the tracking layer on a coherent dark drive.
func BenchmarkTrackingGain(b *testing.B) {
	var detR, trkR float64
	for i := 0; i < b.N; i++ {
		var err error
		detR, trkR, err = experiments.TrackingGain(45, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*detR, "detector_recall_%")
	b.ReportMetric(100*trkR, "tracked_recall_%")
}

// BenchmarkAdaptiveVsFixed runs the system-level strategy comparison:
// recall per condition for the adaptive system vs each fixed pipeline.
func BenchmarkAdaptiveVsFixed(b *testing.B) {
	var rows []experiments.AdaptiveVsFixedRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AdaptiveVsFixed(61, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Strategy {
		case "adaptive":
			b.ReportMetric(100*r.Overall, "adaptive_recall_%")
		case "day-only":
			b.ReportMetric(100*r.Overall, "day_only_recall_%")
		case "dark-only":
			b.ReportMetric(100*r.Overall, "dark_only_recall_%")
		}
	}
}

// BenchmarkROIGating measures the dark pipeline's window gating: the
// fraction of DBN evaluations the foreground gate eliminates, the
// mechanism that keeps the DBN stage inside the 50 fps budget.
func BenchmarkROIGating(b *testing.B) {
	_, dark, _ := benchDetectors(b)
	sc := synth.RenderScene(synth.NewRNG(77),
		synth.SceneConfig{W: 640, H: 360, Cond: synth.Dark, NumVehicles: 2, RoadLights: 3, OncomingHeadlights: 1})
	bin := dark.Preprocess(sc.Frame)
	var stats pipeline.ScanStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats = dark.ScanLightsStats(bin)
	}
	b.ReportMetric(100*stats.GatedFraction(), "gated_%")
	b.ReportMetric(float64(stats.Evaluated), "dbn_evals")
}

// BenchmarkQuantizationLoss compares the float reference datapath
// with the Q16.16 fixed-point SVM stage the PL computes in.
func BenchmarkQuantizationLoss(b *testing.B) {
	var res experiments.QuantizationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.QuantizationLoss(51, 50, 40)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.FloatAcc.Accuracy(), "float_acc_%")
	b.ReportMetric(100*res.FixedAcc.Accuracy(), "fixed_acc_%")
	b.ReportMetric(res.MaxMarginErr, "max_margin_err")
	b.ReportMetric(float64(res.Disagreement), "disagreements")
}

// --- Component micro-benchmarks ---

// BenchmarkHOGExtract measures one 64x64 HOG descriptor.
func BenchmarkHOGExtract(b *testing.B) {
	g := img.RGBToGray(synth.VehicleCrop(synth.NewRNG(60), 64, 64, synth.Day))
	cfg := hog.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Extract(g)
	}
}

// BenchmarkSVMPredict measures one 1764-dim linear classification.
func BenchmarkSVMPredict(b *testing.B) {
	day, _, _ := benchDetectors(b)
	g := img.RGBToGray(synth.VehicleCrop(synth.NewRNG(61), 64, 64, synth.Day))
	f := day.HOG.Extract(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day.Model.Margin(f)
	}
}

// BenchmarkDBNForward measures one 9x9 window classification.
func BenchmarkDBNForward(b *testing.B) {
	_, dark, _ := benchDetectors(b)
	w := synth.TaillightWindow(synth.NewRNG(62), synth.WindowMedium)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dark.Net.Classify(w)
	}
}

// BenchmarkSceneRender measures frame synthesis at the dark pipeline's
// working resolution.
func BenchmarkSceneRender(b *testing.B) {
	for i := 0; i < b.N; i++ {
		synth.RenderScene(synth.NewRNG(uint64(i)), synth.DefaultSceneConfig(640, 360, synth.Dark))
	}
}

// BenchmarkDetectProcessFrame compares a full detection frame
// (vehicle + pedestrian scans over 640x360) through the adaptive
// system on the serial path against the worker pool at NumCPU — the
// software stand-in for the PL's replicated window-evaluation lanes.
// Output is identical on both paths; only wall time differs.
func BenchmarkDetectProcessFrame(b *testing.B) {
	day, dark, ped := benchDetectors(b)
	dets := Detectors{Day: day, Dusk: day, Dark: dark, Pedestrian: ped}
	sc := synth.RenderScene(synth.NewRNG(9), synth.DefaultSceneConfig(640, 360, synth.Day))
	for _, bc := range []struct {
		name    string
		par     int
		metrics bool
	}{{"serial", 1, false}, {"parallel", 0, false}, {"metrics", 1, true}} {
		b.Run(bc.name, func(b *testing.B) {
			opts := []Option{WithParallelism(bc.par)}
			if bc.metrics {
				opts = append(opts, WithMetrics())
			}
			sys, err := NewSystem(dets, opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.ProcessFrame(sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectDayDusk compares the raw day/dusk detector scan
// serial vs parallel, isolating the worker pool from system overhead.
func BenchmarkDetectDayDusk(b *testing.B) {
	day, _, _ := benchDetectors(b)
	sc := synth.RenderScene(synth.NewRNG(9), synth.DefaultSceneConfig(640, 360, synth.Day))
	gray := img.RGBToGray(sc.Frame)
	ctx := context.Background()
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := day.DetectCtx(ctx, gray, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScanBlockResponse isolates the PR's tentpole: the same
// 640x360 day scan with the block-response engine on ("block") and
// forced onto the per-window descriptor path ("descriptor"), serial so
// the comparison is pure arithmetic, not scheduling. Both produce
// identical detections; block must be >= 2x faster.
func BenchmarkScanBlockResponse(b *testing.B) {
	day, _, _ := benchDetectors(b)
	sc := synth.RenderScene(synth.NewRNG(9), synth.DefaultSceneConfig(640, 360, synth.Day))
	gray := img.RGBToGray(sc.Frame)
	ctx := context.Background()
	for _, bc := range []struct {
		name     string
		noBlocks bool
	}{{"block", false}, {"descriptor", true}} {
		b.Run(bc.name, func(b *testing.B) {
			det := *day
			det.NoBlockResponse = bc.noBlocks
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.DetectCtx(ctx, gray, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScanEarlyReject isolates this PR's tentpole: the same
// 640x360 day scan with the partial-margin early exit on ("early",
// the production default), with the exit disabled ("full", the full
// precomputed response plane — PR5's path), through the fixed-point
// datapath ("quantized"), and forced onto the per-window descriptor
// path ("descriptor"). Serial so the comparison is pure arithmetic,
// not scheduling. early/full/descriptor produce identical detections;
// quantized matches boxes with scores inside the analytic error bound.
func BenchmarkScanEarlyReject(b *testing.B) {
	day, _, _ := benchDetectors(b)
	sc := synth.RenderScene(synth.NewRNG(9), synth.DefaultSceneConfig(640, 360, synth.Day))
	gray := img.RGBToGray(sc.Frame)
	ctx := context.Background()
	for _, bc := range []struct {
		name string
		set  func(d *pipeline.DayDuskDetector)
	}{
		{"early", func(d *pipeline.DayDuskDetector) {}},
		{"full", func(d *pipeline.DayDuskDetector) { d.NoEarlyReject = true }},
		{"quantized", func(d *pipeline.DayDuskDetector) { d.Quantized = true }},
		{"descriptor", func(d *pipeline.DayDuskDetector) { d.NoBlockResponse = true }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			det := *day
			bc.set(&det)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.DetectCtx(ctx, gray, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScanTemporalCache isolates this PR's tentpole: the same
// static-camera 640x360 day sequence scanned cold (no cache — every
// frame pays the full feature/block/response stack) and warm (temporal
// cache attached — consecutive frames recompute only the tiles the
// moving vehicles dirtied). Serial so the comparison is pure
// arithmetic. Detections are byte-identical between the two lanes;
// the warm lane also reports its steady-state tile hit rate.
func BenchmarkScanTemporalCache(b *testing.B) {
	day, _, _ := benchDetectors(b)
	sh := synth.NewStaticHighway(10, 640, 360, synth.Day, 3)
	frames := make([]*img.Gray, 16)
	for i := range frames {
		frames[i] = img.RGBToGray(sh.Frame(i).Frame)
	}
	ctx := context.Background()
	b.Run("cold", func(b *testing.B) {
		det := *day
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := det.DetectCtx(ctx, frames[i%len(frames)], 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		det := *day
		det.Temporal = pipeline.NewTemporalCache()
		// Warm-up: the first frame pays the cold cost once, outside the
		// measured region.
		if _, err := det.DetectCtx(ctx, frames[0], 1); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := det.DetectCtx(ctx, frames[(i+1)%len(frames)], 1); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := det.Temporal.Stats()
		b.ReportMetric(100*st.HitRate(), "tile_hit_%")
	})
}

// BenchmarkAdaptiveFrame measures one timing-mode frame through the
// adaptive system, with telemetry off and on. The delta between the
// two sub-benchmarks is the whole per-frame metrics cost on the
// timing-only path, where no detection work hides it.
func BenchmarkAdaptiveFrame(b *testing.B) {
	for _, bc := range []struct {
		name    string
		metrics bool
	}{{"off", false}, {"metrics", true}} {
		b.Run(bc.name, func(b *testing.B) {
			opts := []Option{WithTimingOnly()}
			if bc.metrics {
				opts = append(opts, WithMetrics())
			}
			sys, err := NewSystem(Detectors{}, opts...)
			if err != nil {
				b.Fatal(err)
			}
			sc := synth.RenderScene(synth.NewRNG(63), synth.DefaultSceneConfig(64, 36, synth.Day))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.ProcessFrame(sc)
			}
		})
	}
}
