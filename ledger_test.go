package advdet

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// ledgerDrive pushes n frames of a day->dusk->dark->day drive through
// one stream and returns the frame results.
func ledgerDrive(t *testing.T, s *Stream, n int, seed uint64) []FrameResult {
	t.Helper()
	ctx := context.Background()
	seg := n / 4
	out := make([]FrameResult, 0, n)
	for i := 0; i < n; i++ {
		cond := Day
		lux := 10000.0
		switch {
		case i >= seg && i < 2*seg:
			cond, lux = Dusk, 300
		case i >= 2*seg && i < 3*seg:
			cond, lux = Dark, 5
		}
		sc := RenderScene(seed+uint64(i), 128, 72, cond)
		sc.Lux = lux
		r, err := s.Process(ctx, sc)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

// TestLedgerDeterministicAcrossWorkers is the event-order determinism
// table: with the ledger on, the per-stream hash chains (which commit
// to every event's bytes AND order) must be identical whether the
// fleet runs 1, 2 or NumCPU workers — and so must the detections the
// frame events summarize.
func TestLedgerDeterministicAcrossWorkers(t *testing.T) {
	d := getDets(t)
	const nStreams, nFrames = 2, 12
	type run struct {
		heads   map[int32]LedgerHash
		results [][]FrameResult
	}
	var ref run
	for wi, workers := range []int{1, 2, runtime.NumCPU()} {
		eng := NewEngine(d, WithFleetWorkers(workers), WithQueueDepth(64))
		var cur run
		cur.heads = map[int32]LedgerHash{}
		cur.results = make([][]FrameResult, nStreams)
		var wg sync.WaitGroup
		for si := 0; si < nStreams; si++ {
			s, err := eng.NewStream(WithStreamLedger())
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				cur.results[si] = ledgerDrive(t, s, nFrames, uint64(300+si))
			}(si)
		}
		wg.Wait()
		led := eng.Ledger()
		for _, id := range led.Streams() {
			h, _ := led.ChainHead(id)
			cur.heads[id] = h
			if got := led.ChainLen(id); got < nFrames {
				t.Fatalf("workers=%d stream %d chained %d events, want >= %d (one per frame)",
					workers, id, got, nFrames)
			}
		}
		eng.Close()
		if wi == 0 {
			ref = cur
			continue
		}
		if !reflect.DeepEqual(cur.heads, ref.heads) {
			t.Fatalf("workers=%d: chain heads differ from the single-worker run:\n got %v\nwant %v",
				workers, cur.heads, ref.heads)
		}
		if !reflect.DeepEqual(cur.results, ref.results) {
			t.Fatalf("workers=%d: frame results differ from the single-worker run", workers)
		}
	}
}

// TestDetectionsByteIdenticalWithLedger pins the zero-interference
// contract: enabling the ledger (and an event sink) must not change a
// single detection.
func TestDetectionsByteIdenticalWithLedger(t *testing.T) {
	d := getDets(t)
	drive := func(opts ...Option) []FrameResult {
		sys, err := NewSystem(d, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var out []FrameResult
		for i := 0; i < 6; i++ {
			cond := Day
			if i >= 3 {
				cond = Dusk
			}
			sc := RenderScene(uint64(400+i), 160, 90, cond)
			r, err := sys.ProcessFrame(sc)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
		}
		return out
	}
	plain := drive()
	led := NewLedger(LedgerConfig{})
	recorded := drive(WithLedger(led), WithEventSink(NewEventLog()))
	if !reflect.DeepEqual(plain, recorded) {
		t.Fatal("detections changed when the ledger was enabled")
	}
	if led.ChainLen(0) < len(recorded) {
		t.Fatalf("ledger chained %d events, want at least one per frame (%d)",
			led.ChainLen(0), len(recorded))
	}
}

// TestProcessFrameAllocsWithLedger is the hot-path alloc gate with the
// ledger enabled: a steady-state frame — scan included — must stay
// within the scan path's 40-object budget; the ledger feed (reused
// encode buffer, arena-backed chain) must not add per-frame
// allocations on top.
func TestProcessFrameAllocsWithLedger(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	d := getDets(t)
	led := NewLedger(LedgerConfig{})
	sys, err := NewSystem(d, WithLedger(led))
	if err != nil {
		t.Fatal(err)
	}
	sc := RenderScene(500, 160, 90, Day)
	// Warm the pools: first frames grow every buffer to steady state.
	for i := 0; i < 8; i++ {
		if _, err := sys.ProcessFrame(sc); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := sys.ProcessFrame(sc); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 40
	if allocs > maxAllocs {
		t.Fatalf("steady-state frame with ledger allocates %.0f objects, want <= %d", allocs, maxAllocs)
	}
}

// TestStatsCopyNoAliasing: the slices inside a Stats snapshot must be
// copies — callers mutating a snapshot cannot corrupt the system's own
// records (or a later snapshot).
func TestStatsCopyNoAliasing(t *testing.T) {
	plan := NewFaultPlan(42).CorruptStage("dark", 1)
	sys, err := NewSystem(Detectors{}, WithTimingOnly(), WithInitial(Dusk), WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		sc := RenderScene(uint64(600+i), 64, 36, Dark)
		sc.Lux = 5
		if _, err := sys.ProcessFrame(sc); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.Stats()
	if len(st.FaultLog) == 0 || len(st.Reconfigs) == 0 {
		t.Fatalf("drive produced no fault/reconfig records (%d, %d)", len(st.FaultLog), len(st.Reconfigs))
	}
	st.FaultLog[0].Err = nil
	st.FaultLog[0].Attempt = 999
	st.Reconfigs[0].Attempts = 999
	fresh := sys.Stats()
	if fresh.FaultLog[0].Err == nil || fresh.FaultLog[0].Attempt == 999 {
		t.Fatal("mutating a Stats snapshot corrupted the system's fault log")
	}
	if fresh.Reconfigs[0].Attempts == 999 {
		t.Fatal("mutating a Stats snapshot corrupted the system's reconfig records")
	}
}

// TestFaultPlanEventsCopy: the injected-fault journal handed out by
// Plan.Events must be a copy for the same reason.
func TestFaultPlanEventsCopy(t *testing.T) {
	plan := NewFaultPlan(42).CorruptStage("dark", 1)
	sys, err := NewSystem(Detectors{}, WithTimingOnly(), WithInitial(Dusk), WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		sc := RenderScene(uint64(700+i), 64, 36, Dark)
		sc.Lux = 5
		if _, err := sys.ProcessFrame(sc); err != nil {
			t.Fatal(err)
		}
	}
	evs := plan.Events()
	if len(evs) == 0 {
		t.Fatal("no injected faults recorded")
	}
	saved := evs[0]
	evs[0].Site = saved.Site + 100
	evs[0].Key = "tampered"
	fresh := plan.Events()
	if fresh[0] != saved {
		t.Fatal("mutating Plan.Events()'s return corrupted the plan's journal")
	}
}

// TestEngineMultiStreamLedgerE2E is the full loop at the API surface:
// several fault-injected streams chain into one engine ledger, the
// engine Close seals the tail, and the serialized log verifies —
// chains, roots, anchor and proofs.
func TestEngineMultiStreamLedgerE2E(t *testing.T) {
	eng := NewEngine(Detectors{}, WithQueueDepth(64))
	if eng.Ledger() != nil {
		t.Fatal("engine reports a ledger before any stream enrolled")
	}
	const nStreams = 3
	var wg sync.WaitGroup
	for i := 0; i < nStreams; i++ {
		plan := NewFaultPlan(uint64(80+i)).CorruptStage("dark", 1)
		s, err := eng.NewStream(
			WithStreamTimingOnly(),
			WithStreamInitial(Dusk),
			WithStreamFaultPlan(plan),
			WithStreamLedger(),
		)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			ctx := context.Background()
			for j := 0; j < 40; j++ {
				sc := RenderScene(seed+uint64(j), 64, 36, Dark)
				sc.Lux = 5
				if _, err := s.Process(ctx, sc); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(800 + 100*i))
	}
	wg.Wait()
	led := eng.Ledger()
	if led == nil {
		t.Fatal("no engine ledger after streams enrolled")
	}
	eng.Close() // joins the sealer, which seals the tail batch
	if led.OpenLeaves() != 0 {
		t.Fatalf("engine Close left %d unsealed events", led.OpenLeaves())
	}
	if got := len(led.Streams()); got != nStreams {
		t.Fatalf("ledger holds %d chains, want %d", got, nStreams)
	}

	var buf bytes.Buffer
	if _, err := led.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lg, err := ReadLedgerLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyLedgerLog(lg)
	if !rep.OK {
		t.Fatalf("recorded drive failed verification: %+v", rep)
	}
	events, batches := led.Counts()
	if rep.Events != int(events) || rep.Batches != int(batches) {
		t.Fatalf("report counts (%d, %d) disagree with the ledger (%d, %d)",
			rep.Events, rep.Batches, events, batches)
	}
	// Every batch's first leaf proves inclusion from the recorded bytes.
	for bi := range lg.Batches {
		proof, err := lg.Prove(bi, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !proof.Verify(lg.Batches[bi].Root) {
			t.Fatalf("batch %d inclusion proof does not verify", bi)
		}
	}
	// And a flipped byte no longer verifies.
	lg.Streams[0].Payloads[0][0] ^= 1
	if rep := VerifyLedgerLog(lg); rep.OK {
		t.Fatal("tampered recording still verifies")
	}
}
