module advdet

go 1.22
