package advdet

import (
	"errors"
	"testing"
)

// TestFaultScenarioEndToEnd is the acceptance scenario for the
// resilience layer: a drive hits darkness while the dark bitstream's
// staged image is corrupt AND the first PR-done interrupt is lost.
// The system must re-stage and retry, burn through its (deliberately
// small) retry budget into ModeDegraded, serve the last-good vehicle
// model throughout, never miss a pedestrian frame, recover
// automatically on the next clean completion, and then execute a
// later clean switch as if nothing happened — all visible through the
// public API and the metrics snapshot.
func TestFaultScenarioEndToEnd(t *testing.T) {
	plan := NewFaultPlan(42).
		CorruptStage("dark", 1). // boot staging of the dark bitstream
		DropIRQ(IRQPRDone, 1)    // first reconfiguration completion
	sys, err := NewSystem(Detectors{},
		WithTimingOnly(),
		WithInitial(Dusk),
		WithMetrics(),
		WithFaultPlan(plan),
		WithRetryPolicy(RetryPolicy{MaxRetries: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}

	var results []FrameResult
	drive := func(cond Condition, lux float64, n int) {
		sc := RenderScene(3, 64, 36, cond)
		sc.Lux = lux
		for i := 0; i < n; i++ {
			r, err := sys.ProcessFrame(sc)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
	}
	drive(Dusk, 300, 5)
	drive(Dark, 5, 45) // the faulted switch plus recovery headroom

	st := sys.Stats()
	if sys.Loaded().String() != "dark" || sys.Mode() != ModeNominal {
		t.Fatalf("loaded=%v mode=%v, want dark/nominal after recovery", sys.Loaded(), sys.Mode())
	}

	// The static partition is sacrosanct: pedestrian detection ran on
	// every single frame of the drive, faults or not.
	if st.PedestrianFrames != len(results) {
		t.Fatalf("pedestrian frames = %d, want %d", st.PedestrianFrames, len(results))
	}

	// During the retry windows the vehicle path served the last-good
	// resident model instead of dropping.
	if st.StaleVehicleFrames == 0 {
		t.Fatal("no stale vehicle frames: retries must serve the last-good model")
	}
	for _, r := range results {
		if r.VehicleStale && r.VehicleDropped {
			t.Fatalf("frame %d both stale and dropped", r.Index)
		}
	}

	// Mode trajectory: nominal until the fault, recovering within
	// budget, degraded only once the budget is exhausted, nominal again
	// after the clean completion.
	var seq []Mode
	for _, r := range results {
		if len(seq) == 0 || seq[len(seq)-1] != r.Mode {
			seq = append(seq, r.Mode)
		}
	}
	want := []Mode{ModeNominal, ModeRecovering, ModeDegraded, ModeNominal}
	bad := len(seq) != len(want)
	for i := 0; !bad && i < len(want); i++ {
		bad = seq[i] != want[i]
	}
	if bad {
		t.Fatalf("mode sequence %v, want %v", seq, want)
	}

	// The fault log carries typed sentinels: the corrupt image failed
	// verification, the lost interrupt tripped the watchdog.
	var sawVerify, sawTimeout bool
	for _, f := range st.FaultLog {
		sawVerify = sawVerify || errors.Is(f.Err, ErrVerify)
		sawTimeout = sawTimeout || errors.Is(f.Err, ErrReconfigTimeout)
	}
	if !sawVerify || !sawTimeout {
		t.Fatalf("fault log verify=%v timeout=%v, want both: %+v", sawVerify, sawTimeout, st.FaultLog)
	}
	if st.VerifyFailures != 1 || st.WatchdogTrips != 1 || st.Retries != 2 || st.IRQsDropped != 1 {
		t.Fatalf("verify=%d trips=%d retries=%d dropped=%d, want 1/1/2/1",
			st.VerifyFailures, st.WatchdogTrips, st.Retries, st.IRQsDropped)
	}
	if len(st.Reconfigs) != 1 || st.Reconfigs[0].Attempts != 3 || st.Reconfigs[0].DonePS == 0 {
		t.Fatalf("reconfigs = %+v, want one completed record with 3 attempts", st.Reconfigs)
	}

	// The whole story is visible in the metrics snapshot.
	snap := sys.Snapshot()
	wantFaults := map[string]uint64{"verify": 1, "watchdog": 1, "retry": 2, "irq-dropped": 1}
	for kind, n := range wantFaults {
		if row, ok := snap.FaultByKind(kind); !ok || row.Count != n {
			t.Fatalf("metrics fault %q = %+v, want %d", kind, row, n)
		}
	}
	if row, _ := snap.FaultByKind("degraded-frame"); row.Count == 0 {
		t.Fatal("metrics recorded no degraded frames")
	}
	if row, _ := snap.StageByName("reconfig-fault"); row.Count != 2 {
		t.Fatalf("reconfig-fault stage count = %d, want 2 (one per retry)", row.Count)
	}
	if g, ok := snap.GaugeByName("mode"); !ok || g.Value != uint64(ModeNominal) {
		t.Fatalf("mode gauge = %+v, want nominal", g)
	}

	// The next transition is clean: a single-attempt switch back, one
	// dropped frame, mode never leaves nominal.
	preDrops, preStale := st.VehicleDropped, st.StaleVehicleFrames
	drive(Dusk, 300, 20)
	st = sys.Stats()
	if sys.Loaded().String() != "day-dusk" || sys.Mode() != ModeNominal {
		t.Fatalf("loaded=%v mode=%v after clean switch back", sys.Loaded(), sys.Mode())
	}
	if len(st.Reconfigs) != 2 || st.Reconfigs[1].Attempts != 1 || st.Reconfigs[1].DonePS == 0 {
		t.Fatalf("second reconfig = %+v, want one clean single-attempt completion", st.Reconfigs)
	}
	if st.VehicleDropped != preDrops+1 {
		t.Fatalf("clean switch dropped %d frames, want 1", st.VehicleDropped-preDrops)
	}
	if st.StaleVehicleFrames != preStale {
		t.Fatalf("clean switch added %d stale frames, want 0", st.StaleVehicleFrames-preStale)
	}
}
