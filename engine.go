package advdet

import (
	"fmt"
	"io"
	"sync"
	"time"

	"advdet/internal/adaptive"
	"advdet/internal/fleet"
	"advdet/internal/ledger"
	"advdet/internal/metrics"
)

// Fleet-scale types and errors, re-exported from internal/fleet and
// internal/metrics.
type (
	// FleetStats are the engine dispatcher's monotonic counters
	// (admitted/rejected/executed/abandoned items and batches).
	FleetStats = fleet.Stats
	// FleetSnapshot is the engine-wide metrics rollup: per-stream
	// slot-deadline accounting plus the aggregate streams×fps
	// capacity.
	FleetSnapshot = metrics.FleetSnapshot
	// StreamSnapshot is one stream's row in a FleetSnapshot.
	StreamSnapshot = metrics.StreamSnapshot
)

// Typed fleet admission errors — %w-wrapped sentinels, matched with
// errors.Is (never by substring).
var (
	// ErrOverloaded: the engine's bounded admission queue is full; the
	// frame was shed, not queued. Back off or degrade.
	ErrOverloaded = fleet.ErrOverloaded
	// ErrStreamClosed: the frame was offered to a closed stream.
	ErrStreamClosed = fleet.ErrStreamClosed
	// ErrEngineClosed: the engine (its dispatcher) has been closed.
	ErrEngineClosed = fleet.ErrClosed
)

// Engine is the shared half of the fleet-scale API: the immutable
// trained models, the pooled scan scratch and scan-lane budget, and
// the bounded dispatcher every stream's frames are multiplexed over —
// the software analogue of the paper's PL fabric, one set of
// synthesized detection hardware time-shared by many camera slots.
// Everything per-camera (monitor hysteresis, the reconfiguration state
// machine, slot-deadline accounting, per-stream metrics) lives in the
// Streams created from it.
//
// An Engine is safe for concurrent use by all its streams. Close it
// when done to join the dispatcher's goroutines; single-stream callers
// who want none of this machinery should use NewSystem, which spawns
// no goroutines.
type Engine struct {
	adEng         *adaptive.Engine
	disp          *fleet.Dispatcher
	rollup        *metrics.Fleet
	scanQuantized bool
	scanTemporal  bool

	mu     sync.Mutex
	nextID int
	closed bool
	led    *ledger.Ledger
	sealer *fleet.Sealer
}

// engineConfig collects the EngineOption knobs.
type engineConfig struct {
	parallelism   int
	fleet         fleet.Config
	scanQuantized bool
	scanTemporal  bool
}

// EngineOption configures an Engine at construction time.
type EngineOption func(*engineConfig)

// WithEngineParallelism sets the engine's total scan-lane budget — the
// pool shared by every stream's detection scans (n <= 0 selects
// runtime.NumCPU()). Per-stream WithStreamParallelism then caps how
// many shared lanes one frame may borrow.
func WithEngineParallelism(n int) EngineOption {
	return func(c *engineConfig) { c.parallelism = n }
}

// WithFleetWorkers sets the dispatcher's executor pool size: how many
// frames (across all streams) execute concurrently. n <= 0 selects
// runtime.NumCPU().
func WithFleetWorkers(n int) EngineOption {
	return func(c *engineConfig) { c.fleet.Workers = n }
}

// WithQueueDepth bounds the admission queue; a full queue makes
// Stream.Process fail fast with ErrOverloaded instead of queueing
// unboundedly. n <= 0 selects twice the worker count.
func WithQueueDepth(n int) EngineOption {
	return func(c *engineConfig) { c.fleet.QueueDepth = n }
}

// WithEngineQuantizedScan makes fixed-point HOG scan scoring the
// default for every stream opened on the engine (see
// WithQuantizedScan). Individual streams can still differ by passing
// WithStreamSystemOptions with ScanQuantized unset.
func WithEngineQuantizedScan() EngineOption {
	return func(c *engineConfig) { c.scanQuantized = true }
}

// WithEngineTemporalCache makes the temporal scan cache the default
// for every stream opened on the engine (see WithTemporalCache). Each
// stream still gets its own caches — only the default is shared —
// so streams never alias each other's frame history. Individual
// streams can opt out by passing WithStreamSystemOptions with
// ScanTemporalCache unset.
func WithEngineTemporalCache() EngineOption {
	return func(c *engineConfig) { c.scanTemporal = true }
}

// WithBatchPolicy shapes the size-or-deadline batcher: a batch is
// flushed to the executors when it holds maxBatch frames or when its
// oldest frame has waited maxWait, whichever comes first. Zero values
// keep the defaults (4 frames, 2ms).
func WithBatchPolicy(maxBatch int, maxWait time.Duration) EngineOption {
	return func(c *engineConfig) {
		c.fleet.MaxBatch = maxBatch
		c.fleet.MaxWait = maxWait
	}
}

// NewEngine builds the shared engine over a trained detector set and
// starts its dispatcher. The detectors are treated as immutable from
// here on: every stream scans against the same models, exactly as the
// paper's frame slots execute against the same loaded bitstreams.
func NewEngine(dets Detectors, opts ...EngineOption) *Engine {
	var cfg engineConfig
	for _, o := range opts {
		o(&cfg)
	}
	return &Engine{
		adEng:         adaptive.NewEngine(dets, adaptive.EngineConfig{Parallelism: cfg.parallelism}),
		disp:          fleet.NewDispatcher(cfg.fleet),
		rollup:        metrics.NewFleet(),
		scanQuantized: cfg.scanQuantized,
		scanTemporal:  cfg.scanTemporal,
	}
}

// Detectors returns the engine's shared trained models.
func (e *Engine) Detectors() Detectors { return e.adEng.Dets }

// FleetStats returns the dispatcher's admission/execution counters.
func (e *Engine) FleetStats() FleetStats { return e.disp.Stats() }

// FleetSnapshot exports the engine-wide metrics rollup: one row per
// attached stream (slot-deadline hits/misses, deadline-weighted fps)
// and the aggregate streams×fps capacity.
func (e *Engine) FleetSnapshot() FleetSnapshot { return e.rollup.Snapshot() }

// WriteFleetProm writes the fleet rollup in the Prometheus text
// exposition format: per-stream slot-deadline counters labelled by
// stream plus the aggregate capacity gauges.
func (e *Engine) WriteFleetProm(w io.Writer) error { return e.rollup.WriteProm(w) }

// Ledger returns the engine-level tamper-evident ledger, or nil if no
// stream was opened with WithStreamLedger. All enrolled streams chain
// into it (one hash chain per stream) under one Merkle sealer and one
// anchor chain.
func (e *Engine) Ledger() *Ledger {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.led
}

// ledgerLocked lazily builds the shared ledger and starts its
// wall-clock sealer the first time a stream enrolls. Caller holds
// e.mu.
func (e *Engine) ledgerLocked() *ledger.Ledger {
	if e.led == nil {
		e.led = ledger.New(ledger.Config{})
		e.sealer = fleet.NewSealer(e.led.SealOpen, 0)
	}
	return e.led
}

// Close shuts the engine down: in-flight frames complete, the
// dispatcher's goroutines are joined (then the ledger sealer's, which
// seals the tail batch), and every subsequent Stream.Process fails
// with ErrEngineClosed. Close is idempotent. Streams need no separate
// teardown, though closing them first gives a cleaner capacity rollup
// (closed streams stop counting as active).
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	sealer := e.sealer
	e.mu.Unlock()
	e.disp.Close()
	if sealer != nil {
		sealer.Close()
	}
}

// NewStream opens one camera stream on the engine. The stream owns
// every per-camera piece of the paper's architecture — the
// light-condition monitor with hysteresis, the reconfiguration state
// machine with both bitstreams staged, slot-deadline accounting and
// (optionally) a metrics registry — while borrowing the engine's
// shared models and scan lanes for the actual detection work.
//
// A Stream is not safe for concurrent Process calls (a camera delivers
// frames in order); different streams are independent and run
// concurrently through the engine's dispatcher.
func (e *Engine) NewStream(opts ...StreamOption) (*Stream, error) {
	cfg := streamConfig{opt: DefaultSystemOptions()}
	cfg.opt.ScanQuantized = e.scanQuantized
	cfg.opt.ScanTemporalCache = e.scanTemporal
	for _, o := range opts {
		o(&cfg)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("advdet: new stream: %w", ErrEngineClosed)
	}
	id := e.nextID
	e.nextID++
	// The engine-assigned id labels the stream's events and keys its
	// hash chain in the shared ledger; with WithStreamLedger the stream
	// enrolls in the lazily built engine-level ledger + sealer.
	cfg.opt.StreamID = int32(id)
	if cfg.ledger {
		cfg.opt.Ledger = e.ledgerLocked()
	}
	e.mu.Unlock()
	if cfg.name == "" {
		cfg.name = fmt.Sprintf("stream-%d", id)
	}
	sys, err := e.adEng.NewSystem(cfg.opt)
	if err != nil {
		return nil, fmt.Errorf("advdet: new stream %s: %w", cfg.name, err)
	}
	s := &Stream{eng: e, sys: sys, name: cfg.name}
	e.rollup.Attach(cfg.name, cfg.opt.FPS, sys.Metrics())
	return s, nil
}
