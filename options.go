package advdet

// Option configures a System at construction time. Options are
// applied in order on top of DefaultSystemOptions, so later options
// win; WithOptions replaces the whole struct and is therefore usually
// first when mixed with field options.
type Option func(*SystemOptions)

// WithOptions replaces the entire option struct — the bridge for
// callers still building a SystemOptions by hand.
func WithOptions(opt SystemOptions) Option {
	return func(o *SystemOptions) { *o = opt }
}

// WithFPS sets the camera frame rate (the paper runs at 50).
func WithFPS(fps int) Option {
	return func(o *SystemOptions) { o.FPS = fps }
}

// WithBitstreamBytes sets the partial bitstream size used by the
// reconfiguration model.
func WithBitstreamBytes(n int) Option {
	return func(o *SystemOptions) { o.BitstreamBytes = n }
}

// WithInitial sets the boot lighting condition.
func WithInitial(c Condition) Option {
	return func(o *SystemOptions) { o.Initial = c }
}

// WithParallelism bounds the detection worker pool — the software
// model of the PL's replicated window-evaluation lanes. n <= 0 means
// runtime.NumCPU(); 1 runs every scan on the calling goroutine.
// Detection output is identical for every setting.
func WithParallelism(n int) Option {
	return func(o *SystemOptions) { o.Parallelism = n }
}

// WithTimingOnly disables software detection: the system models frame
// timing and reconfiguration only, for long timing-focused scenarios.
func WithTimingOnly() Option {
	return func(o *SystemOptions) { o.RunDetectors = false }
}

// WithSenseFromImage estimates ambient light from frame pixels
// instead of the scene's sensor value — the fallback for platforms
// without the paper's external light sensor.
func WithSenseFromImage() Option {
	return func(o *SystemOptions) { o.SenseFromImage = true }
}

// WithTracking runs the Kalman/Hungarian tracker over detections;
// confirmed tracks appear in FrameResult.Tracks and coast through the
// one-frame reconfiguration dropout.
func WithTracking() Option {
	return func(o *SystemOptions) { o.EnableTracking = true }
}

// WithMetrics attaches the frame-budget telemetry registry: per-stage
// counters and histograms in simulated and wall time plus
// slot-deadline accounting, read back through System.Snapshot or
// System.Metrics. Disabled (the default), the per-frame path performs
// no metrics work at all.
func WithMetrics() Option {
	return func(o *SystemOptions) { o.EnableMetrics = true }
}

// WithFaultPlan installs a fault injector on the reconfiguration
// datapath: staging CRC corruption, PR DMA stalls and aborts, dropped
// PR-done interrupts and failed model-bank selects (see NewFaultPlan).
// A nil plan — the default — injects nothing at zero cost.
func WithFaultPlan(p *FaultPlan) Option {
	return func(o *SystemOptions) { o.FaultPlan = p }
}

// WithRetryPolicy bounds the reconfiguration watchdog and
// retry/backoff loop. Zero fields are filled from
// DefaultRetryPolicy, so partial policies tweak one knob at a time.
func WithRetryPolicy(rp RetryPolicy) Option {
	return func(o *SystemOptions) { o.Retry = rp }
}

// WithQuantizedScan scores the HOG scans through the int16/int32
// fixed-point block-response datapath — the software rendition of the
// PL's DSP48 window evaluators. Detection boxes are identical to the
// float scan (borderline margins re-score through the float path);
// reported scores may differ by at most the quantizer's analytic
// error bound. Models whose weights exceed the quantizer's range fall
// back to the float path silently.
func WithQuantizedScan() Option {
	return func(o *SystemOptions) { o.ScanQuantized = true }
}

// WithTemporalCache reuses each HOG detector's feature, block and
// response buffers across consecutive frames, fingerprinting the frame
// in 64x64 tiles and recomputing only what each frame's changed tiles
// invalidate — the software rendition of persistent BRAM line buffers
// surviving between frames in the PL. Detection output is
// byte-identical to a cold scan of every frame; on static-camera
// footage the warm-frame scan cost drops by the fraction of tiles
// unchanged. Caches are per-detector and are invalidated automatically
// whenever a partial reconfiguration is requested.
func WithTemporalCache() Option {
	return func(o *SystemOptions) { o.ScanTemporalCache = true }
}

// WithoutEarlyReject disables the partial-margin early exit in the
// HOG scans, scoring every window from the full precomputed response
// plane. Detection output is identical either way; this exists for
// benchmarking the cascade's saving and as a fallback switch.
func WithoutEarlyReject() Option {
	return func(o *SystemOptions) { o.ScanNoEarlyReject = true }
}

// WithEventSink subscribes a consumer to the system's unified typed
// event stream: every frame verdict, model select, reconfiguration
// outcome, fault and mode transition, as Event values with stream id,
// frame index and simulated-ps timestamp. Sinks are invoked
// synchronously on the frame-processing goroutine in deterministic
// order; delivery allocates nothing. May be given multiple times.
func WithEventSink(sink EventSink) Option {
	return func(o *SystemOptions) { o.EventSinks = append(o.EventSinks, sink) }
}

// WithLedger attaches a tamper-evident ledger to a standalone system:
// every event's canonical encoding is appended to a hash chain and
// Merkle-batched (size-or-simulated-deadline sealing). Detection
// output is byte-identical with the ledger on, and the scan hot path
// stays within its allocation budget. Read it back with
// System.Ledger(); NewSystem still spawns no goroutines, so the
// wall-clock sealer is engine-only — call Ledger.SealOpen to flush
// the tail before serializing. Passing nil installs a
// default-configured ledger.
func WithLedger(led *Ledger) Option {
	return func(o *SystemOptions) {
		if led == nil {
			led = NewLedger(LedgerConfig{})
		}
		o.Ledger = led
	}
}
