// Command trainmodels trains every model of the adaptive detection
// system from the synthetic datasets (Fig. 1's training flow) and
// writes them to a model directory consumable by cmd/advdet -models:
//
//	day.svm, dusk.svm, combined.svm — vehicle HOG+SVM models,
//	pedestrian.svm                  — static-path pedestrian model,
//	taillight.dbn, pair.svm         — the dark pipeline's networks.
//
// Usage:
//
//	trainmodels [-out models] [-seed 1] [-full]
package main

import (
	"flag"
	"fmt"
	"log"

	"advdet/internal/dbn"
	"advdet/internal/eval"
	"advdet/internal/hog"
	"advdet/internal/models"
	"advdet/internal/pipeline"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trainmodels: ")

	out := flag.String("out", "models", "output directory for model files")
	seed := flag.Uint64("seed", 1, "dataset generation seed")
	full := flag.Bool("full", false, "train at Table I scale (slower)")
	flag.Parse()

	nTrain, nWin := 80, 100
	if *full {
		nTrain, nWin = 300, 250
	}

	hogCfg := hog.DefaultConfig()
	svmOpts := svm.DefaultOptions()
	bundle := &models.Bundle{}

	fmt.Printf("rendering datasets (seed=%d, %d crops/class)...\n", *seed, nTrain)
	dayDS := synth.DayDataset(*seed, 64, 64, nTrain, nTrain)
	duskDS := synth.DuskDataset(*seed+1, 64, 64, nTrain, nTrain, 0)
	combDS := pipeline.CombineDatasets("combined", dayDS, duskDS)

	train := func(name string, ds *synth.Dataset) *svm.Model {
		m, err := pipeline.TrainVehicleSVM(ds, hogCfg, svmOpts)
		if err != nil {
			log.Fatalf("train %s: %v", name, err)
		}
		det := pipeline.NewDayDuskDetector(m)
		c := eval.EvaluateCrops(det.ClassifyCrop, ds.Pos, ds.Neg)
		fmt.Printf("  %-10s train %s (%d iters)\n", name, c, m.Iters)
		return m
	}
	fmt.Println("training vehicle models (HOG + linear SVM, dual coordinate descent):")
	bundle.Day = train("day", dayDS)
	bundle.Dusk = train("dusk", duskDS)
	bundle.Combined = train("combined", combDS)

	fmt.Println("training pedestrian model (mixed day/dusk/dark):")
	pedDay := synth.PedestrianDataset(*seed+2, pipeline.PedWindowW, pipeline.PedWindowH, nTrain*5/8, nTrain*5/8, synth.Day)
	pedDusk := synth.PedestrianDataset(*seed+3, pipeline.PedWindowW, pipeline.PedWindowH, nTrain*3/8, nTrain*3/8, synth.Dusk)
	pedDark := synth.PedestrianDataset(*seed+4, pipeline.PedWindowW, pipeline.PedWindowH, nTrain*3/8, nTrain*3/8, synth.Dark)
	pedAll := pipeline.CombineDatasets("ped", pipeline.CombineDatasets("pd", pedDay, pedDusk), pedDark)
	pedModel, err := pipeline.TrainPedestrianSVM(pedAll, hogCfg, svmOpts)
	if err != nil {
		log.Fatal(err)
	}
	bundle.Pedestrian = pedModel
	pedDet := pipeline.NewPedestrianDetector(pedModel)
	fmt.Printf("  pedestrian train %s\n", eval.EvaluateCrops(pedDet.ClassifyCrop, pedAll.Pos, pedAll.Neg))

	fmt.Println("training dark pipeline (DBN 81-20-8-4 + pair SVM):")
	dbnCfg := dbn.DefaultConfig()
	if !*full {
		dbnCfg.PretrainOpts.Epochs = 4
		dbnCfg.FineTuneIter = 30
	}
	X, labels := synth.TaillightWindowSet(*seed+5, nWin)
	net, err := dbn.Train(X, labels, dbnCfg, synth.NewRNG(*seed+6))
	if err != nil {
		log.Fatal(err)
	}
	bundle.Taillight = net
	fmt.Printf("  taillight DBN window accuracy %.1f%% (%d weight bytes)\n",
		100*net.Accuracy(X, labels), net.WeightBytes())

	bundle.Pair, err = pipeline.TrainPairSVM(*seed+7, 400, svmOpts)
	if err != nil {
		log.Fatal(err)
	}

	if err := bundle.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bundle written to %s/\n", *out)
}
