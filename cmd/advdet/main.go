// Command advdet runs the full adaptive detection system over a
// synthetic drive scenario, reporting per-segment detection activity,
// reconfiguration events and the frames they cost.
//
// Usage:
//
//	advdet [-scenario tunnel|night] [-w 640] [-h 360] [-fps 50]
//	       [-seed 1] [-streams 1] [-timing-only] [-snapshots dir]
//	       [-metrics file] [-metrics-json file] [-pprof addr]
//
// With -streams N > 1 the same drive runs over N concurrent camera
// streams multiplexed on one shared engine; the report covers the
// first stream and the fleet capacity rollup covers them all.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"sync"

	"advdet"
	"advdet/internal/adaptive"
	"advdet/internal/img"
	"advdet/internal/models"
	"advdet/internal/soc"
	"advdet/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("advdet: ")

	scenarioName := flag.String("scenario", "tunnel", "drive scenario: tunnel or night")
	w := flag.Int("w", 640, "frame width")
	h := flag.Int("h", 360, "frame height")
	fps := flag.Int("fps", 50, "camera frame rate")
	seed := flag.Uint64("seed", 1, "scenario seed")
	streams := flag.Int("streams", 1, "concurrent camera streams over one shared engine")
	timingOnly := flag.Bool("timing-only", false, "skip software detection (timing model only)")
	snapshots := flag.String("snapshots", "", "directory for PPM overlay snapshots (optional)")
	modelDir := flag.String("models", "", "load a trained bundle (from cmd/trainmodels) instead of retraining")
	jsonOut := flag.String("json", "", "write a machine-readable run report to this file")
	metricsOut := flag.String("metrics", "", "write frame-budget telemetry in Prometheus text format to this file (\"-\" for stdout)")
	metricsJSON := flag.String("metrics-json", "", "write the telemetry snapshot as JSON to this file (\"-\" for stdout)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	var scenario *synth.Scenario
	switch *scenarioName {
	case "tunnel":
		scenario = advdet.TunnelTransit(*seed, *w, *h, *fps)
	case "night":
		scenario = advdet.NightHighway(*seed, *w, *h, *fps)
	default:
		log.Fatalf("unknown scenario %q", *scenarioName)
	}

	var dets advdet.Detectors
	if *modelDir != "" {
		fmt.Printf("loading models from %s...\n", *modelDir)
		bundle, err := models.Load(*modelDir)
		if err != nil {
			log.Fatal(err)
		}
		day, dusk, dark, ped, err := bundle.Detectors()
		if err != nil {
			log.Fatal(err)
		}
		dets = advdet.Detectors{Day: day, Dusk: dusk, Dark: dark, Pedestrian: ped}
	} else {
		fmt.Printf("training detectors (Fast quality)...\n")
		var err error
		dets, err = advdet.TrainDetectors(*seed+100, advdet.Fast)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *streams < 1 {
		log.Fatalf("-streams must be >= 1, got %d", *streams)
	}
	cond0, _ := scenario.CondAt(0)
	streamOpts := func(name string) []advdet.StreamOption {
		opts := []advdet.StreamOption{
			advdet.WithStreamName(name),
			advdet.WithStreamFPS(*fps),
			advdet.WithStreamInitial(cond0),
		}
		if *timingOnly {
			opts = append(opts, advdet.WithStreamTimingOnly())
		}
		if *metricsOut != "" || *metricsJSON != "" || *streams > 1 {
			opts = append(opts, advdet.WithStreamMetrics())
		}
		return opts
	}
	eng := advdet.NewEngine(dets, advdet.WithQueueDepth(2**streams))
	defer eng.Close()
	ctx := context.Background()
	sys, err := eng.NewStream(streamOpts("cam-0")...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running %q: %d frames of %dx%d at %d fps over %d stream(s)\n",
		scenario.Name, scenario.TotalFrames(), *w, *h, *fps, *streams)

	// Extra streams replay the same drive concurrently on the shared
	// engine while the first stream is reported frame by frame below.
	var extras sync.WaitGroup
	for n := 1; n < *streams; n++ {
		st, err := eng.NewStream(streamOpts(fmt.Sprintf("cam-%d", n))...)
		if err != nil {
			log.Fatal(err)
		}
		extras.Add(1)
		go func(st *advdet.Stream) {
			defer extras.Done()
			for i := 0; i < scenario.TotalFrames(); i++ {
				if _, err := st.Process(ctx, scenario.FrameAt(i)); err != nil {
					log.Printf("stream %s: %v", st.Name(), err)
					return
				}
			}
		}(st)
	}

	type segStats struct {
		label    string
		frames   int
		vehicles int
		peds     int
		dropped  int
	}
	var segs []segStats
	cur := ""
	for i := 0; i < scenario.TotalFrames(); i++ {
		sc := scenario.FrameAt(i)
		res, err := sys.Process(ctx, sc)
		if err != nil {
			log.Fatal(err)
		}
		_, label := scenario.CondAt(i)
		if label != cur {
			segs = append(segs, segStats{label: label})
			cur = label
		}
		s := &segs[len(segs)-1]
		s.frames++
		s.vehicles += len(res.Vehicles)
		s.peds += len(res.Pedestrians)
		if res.VehicleDropped {
			s.dropped++
		}
		if res.ReconfigStarted {
			fmt.Printf("  frame %4d: reconfiguration started (%s, condition %s)\n",
				i, label, res.Cond)
		}
		if *snapshots != "" && i%(*fps) == 0 {
			if err := writeSnapshot(*snapshots, i, sc, res); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("\nper-segment summary:")
	fmt.Printf("  %-20s %7s %9s %11s %8s\n", "segment", "frames", "vehicles", "pedestrians", "dropped")
	for _, s := range segs {
		fmt.Printf("  %-20s %7d %9d %11d %8d\n", s.label, s.frames, s.vehicles, s.peds, s.dropped)
	}

	extras.Wait()
	st := sys.Stats()
	fmt.Printf("\nreconfigurations: %d\n", len(st.Reconfigs))
	for _, r := range st.Reconfigs {
		ms := soc.Seconds(r.DonePS-r.StartPS) * 1e3
		fmt.Printf("  frame %4d: %s -> %s in %.2f ms\n", r.Frame, r.From, r.To, ms)
	}
	fmt.Printf("day<->dusk model switches (no reconfig): %d\n", st.ModelSwitches)
	fmt.Printf("vehicle frames dropped: %d of %d (pedestrian path processed all %d)\n",
		st.VehicleDropped, st.Frames, st.PedestrianFrames)
	if st.SlotOverruns > 0 {
		fmt.Printf("WARNING: %d frame-slot overruns (frame rate exceeds the pipeline budget)\n", st.SlotOverruns)
	}

	if *streams > 1 {
		snap := eng.FleetSnapshot()
		fst := eng.FleetStats()
		fmt.Printf("\nfleet: %d streams, %d frames dispatched in %d batches (%d shed)\n",
			snap.ActiveStreams, fst.Executed, fst.Batches, fst.Rejected)
		fmt.Printf("  aggregate capacity: %.0f streams x fps (deadline %d hit / %d missed)\n",
			snap.CapacityStreamsFPS, snap.DeadlineHits, snap.DeadlineMisses)
	}

	if *jsonOut != "" {
		report := runReport{
			Scenario:       scenario.Name,
			Frames:         st.Frames,
			FPS:            *fps,
			ModelSwitches:  st.ModelSwitches,
			VehicleDropped: st.VehicleDropped,
			SlotOverruns:   st.SlotOverruns,
		}
		for _, r := range st.Reconfigs {
			report.Reconfigs = append(report.Reconfigs, reconfigReport{
				Frame: r.Frame,
				From:  r.From.String(),
				To:    r.To.String(),
				MS:    soc.Seconds(r.DonePS-r.StartPS) * 1e3,
			})
		}
		for _, s := range segs {
			report.Segments = append(report.Segments, segmentReport{
				Label: s.label, Frames: s.frames, Vehicles: s.vehicles,
				Pedestrians: s.peds, Dropped: s.dropped,
			})
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *jsonOut)
	}

	if *metricsOut != "" {
		if err := writeTo(*metricsOut, sys.System().Metrics().WriteProm); err != nil {
			log.Fatal(err)
		}
	}
	if *metricsJSON != "" {
		if err := writeTo(*metricsJSON, sys.Snapshot().WriteJSON); err != nil {
			log.Fatal(err)
		}
	}
}

// writeTo streams fn's output to the named file, or to stdout for "-".
func writeTo(path string, fn func(w io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	fmt.Printf("telemetry written to %s\n", path)
	return f.Close()
}

// runReport is the machine-readable run summary (-json).
type runReport struct {
	Scenario       string           `json:"scenario"`
	Frames         int              `json:"frames"`
	FPS            int              `json:"fps"`
	ModelSwitches  int              `json:"model_switches"`
	VehicleDropped int              `json:"vehicle_frames_dropped"`
	SlotOverruns   int              `json:"slot_overruns"`
	Reconfigs      []reconfigReport `json:"reconfigurations"`
	Segments       []segmentReport  `json:"segments"`
}

type reconfigReport struct {
	Frame int     `json:"frame"`
	From  string  `json:"from"`
	To    string  `json:"to"`
	MS    float64 `json:"ms"`
}

type segmentReport struct {
	Label       string `json:"label"`
	Frames      int    `json:"frames"`
	Vehicles    int    `json:"vehicles"`
	Pedestrians int    `json:"pedestrians"`
	Dropped     int    `json:"dropped"`
}

// writeSnapshot renders detection overlays onto the frame and writes
// a PPM (the Fig. 5-style qualitative output).
func writeSnapshot(dir string, idx int, sc *synth.Scene, res adaptive.FrameResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	frame := sc.Frame.Clone()
	for _, d := range res.Vehicles {
		img.DrawRect(frame, d.Box, 255, 60, 60, 2)
	}
	for _, d := range res.Pedestrians {
		img.DrawRect(frame, d.Box, 60, 255, 60, 2)
	}
	for _, gt := range sc.Vehicles {
		img.DrawRect(frame, gt, 255, 255, 0, 1)
	}
	path := filepath.Join(dir, fmt.Sprintf("frame_%04d_%s.ppm", idx, res.Cond))
	return img.WritePPM(path, frame)
}
