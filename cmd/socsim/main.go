// Command socsim runs a timing-mode drive through the adaptive system
// and reports the platform's event timeline — the software analogue of
// the Vivado ILA captures and ARM event counters the paper uses for
// its measurements (§IV-A).
//
// Usage:
//
//	socsim [-frames 200] [-fps 50] [-csv trace.csv]
//	       [-metrics file] [-metrics-json file] [-pprof addr]
//	       [-faults spec] [-fault-seed n]
//
// The -faults spec is a comma-separated rule list armed on the
// reconfiguration datapath (occurrences are 1-based; 0 = every time):
//
//	corrupt:<id>:<occ>          CRC-corrupt a staging of bitstream id
//	stall:<occ>:<byte>:<ms>     stall the PR DMA mid-stream
//	abort:<occ>:<byte>          error-halt the PR DMA mid-stream
//	irq:<occ>                   drop a PR-done interrupt
//	bank:<occ>                  fail a model-bank select write
//	chaos:<site>:<prob>         random faults at a site (stage, dma-stall,
//	                            dma-abort, irq, bank), seeded by -fault-seed
//
// Example: -faults corrupt:dark:1,irq:1 runs the acceptance scenario
// of the resilience layer.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"advdet/internal/adaptive"
	"advdet/internal/fault"
	"advdet/internal/pipeline"
	"advdet/internal/soc"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("socsim: ")

	frames := flag.Int("frames", 200, "frames to simulate")
	fps := flag.Int("fps", 50, "camera frame rate")
	csvPath := flag.String("csv", "", "write the full event trace as CSV")
	metricsOut := flag.String("metrics", "", "write frame-budget telemetry in Prometheus text format to this file (\"-\" for stdout)")
	metricsJSON := flag.String("metrics-json", "", "write the telemetry snapshot as JSON to this file (\"-\" for stdout)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address for the run's duration")
	faultSpec := flag.String("faults", "", "comma-separated fault rules for the reconfiguration datapath (see package doc)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for probabilistic (chaos) fault rules")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	opt := adaptive.DefaultOptions()
	opt.FPS = *fps
	opt.RunDetectors = false
	opt.Initial = synth.Day
	opt.EnableMetrics = *metricsOut != "" || *metricsJSON != ""
	// The fault summary below reads the unified typed event stream: an
	// EventLog sink sees every fault (including IRQ drops, which carry
	// no error and so never reach the legacy Stats.FaultLog view),
	// reconfiguration phase and mode transition with ps timestamps.
	events := adaptive.NewEventLog()
	opt.EventSinks = []adaptive.EventSink{events}
	var plan *fault.Plan
	if *faultSpec != "" {
		var err error
		if plan, err = parseFaults(*faultSpec, *faultSeed); err != nil {
			log.Fatal(err)
		}
		opt.FaultPlan = plan
		opt.EnableMetrics = true
	}
	// Placeholder models so the BRAM model bank is instantiated and
	// its register traffic appears in the trace; timing mode never
	// evaluates them.
	dets := adaptive.Detectors{
		Day:  pipeline.NewDayDuskDetector(&svm.Model{W: make([]float64, 1)}),
		Dusk: pipeline.NewDayDuskDetector(&svm.Model{W: make([]float64, 1)}),
	}
	// The engine/stream split applies even to a single timing-mode
	// stream: the engine holds what is shareable, the system the
	// per-stream state.
	sys, err := adaptive.NewEngine(dets, adaptive.EngineConfig{}).NewSystem(opt)
	if err != nil {
		log.Fatal(err)
	}

	// A drive that exercises both a free model switch and a real
	// reconfiguration: day -> dusk -> dark -> day.
	seg := *frames / 4
	condAt := func(i int) (synth.Condition, float64) {
		switch {
		case i < seg:
			return synth.Day, 10000
		case i < 2*seg:
			return synth.Dusk, 300
		case i < 3*seg:
			return synth.Dark, 5
		default:
			return synth.Day, 10000
		}
	}

	rng := synth.NewRNG(1)
	for i := 0; i < *frames; i++ {
		cond, lux := condAt(i)
		sc := synth.RenderScene(rng.Split(), synth.SceneConfig{W: 64, H: 36, Cond: cond})
		sc.Lux = lux
		if _, err := sys.ProcessFrame(sc); err != nil {
			log.Fatal(err)
		}
	}

	st := sys.Stats()
	fmt.Printf("simulated %d frames at %d fps (%.2f s of driving, %.2f ms simulated/frame slot)\n",
		st.Frames, *fps, float64(st.Frames)/float64(*fps), 1000/float64(*fps))
	fmt.Printf("model switches: %d, reconfigurations: %d, vehicle frames dropped: %d\n",
		st.ModelSwitches, len(st.Reconfigs), st.VehicleDropped)

	if plan != nil {
		fmt.Printf("\nresilience: mode %s\n", sys.Mode())
		fmt.Printf("  injected fault events: %d\n", len(plan.Events()))
		fmt.Printf("  verify failures: %d, watchdog trips: %d, retries: %d, IRQs dropped: %d\n",
			st.VerifyFailures, st.WatchdogTrips, st.Retries, st.IRQsDropped)
		fmt.Printf("  stale vehicle frames: %d, degraded frames: %d, bank-select faults: %d\n",
			st.StaleVehicleFrames, st.DegradedFrames, st.BankSelectFaults)
		for _, ev := range events.Kind(adaptive.EvFault) {
			detail := "(observed from the platform drop counter)"
			if ev.Fault.Err != nil {
				detail = ev.Fault.Err.Error()
			}
			fmt.Printf("  fault @%8.2f ms frame %3d attempt %d [%s] -> %s: %s\n",
				soc.Seconds(ev.PS)*1e3, ev.Frame, ev.Fault.Attempt, ev.Fault.Code,
				ev.Fault.Target, detail)
		}
		for _, ev := range events.Kind(adaptive.EvModeChange) {
			fmt.Printf("  mode  @%8.2f ms frame %3d %s -> %s\n",
				soc.Seconds(ev.PS)*1e3, ev.Frame, ev.ModeChange.From, ev.ModeChange.To)
		}
	}

	// Event summary by (source, name).
	type key struct{ src, name string }
	counts := map[key]int{}
	var firstPS, lastPS uint64
	trEvents := sys.Z.Trace.Events()
	for i, e := range trEvents {
		counts[key{e.Source, e.Name}]++
		if i == 0 {
			firstPS = e.PS
		}
		lastPS = e.PS
	}
	fmt.Printf("\ntrace: %d events spanning %.2f ms\n", len(trEvents), soc.Seconds(lastPS-firstPS)*1e3)
	fmt.Printf("  %-12s %-24s %s\n", "source", "event", "count")
	for k, n := range counts {
		fmt.Printf("  %-12s %-24s %d\n", k.src, k.name, n)
	}

	// Reconfiguration spans measured from the trace, the ILA-style
	// measurement of §IV-A.
	if ps, ok := sys.Z.Trace.Span("dma-icap", "reconfig-start", "reconfig-done"); ok {
		fmt.Printf("\nreconfiguration span from trace: %.2f ms\n", soc.Seconds(ps)*1e3)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Z.Trace.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("full trace written to %s\n", *csvPath)
	}

	if *metricsOut != "" {
		if err := writeTo(*metricsOut, sys.Metrics().WriteProm); err != nil {
			log.Fatal(err)
		}
	}
	if *metricsJSON != "" {
		if err := writeTo(*metricsJSON, sys.Snapshot().WriteJSON); err != nil {
			log.Fatal(err)
		}
	}
}

// prDMAName is the DMA engine the DMA-ICAP controller owns; stall and
// abort rules target it.
const prDMAName = "pr-dma"

// parseFaults builds a fault plan from the -faults rule list.
func parseFaults(spec string, seed uint64) (*fault.Plan, error) {
	plan := fault.NewPlan(seed)
	for _, rule := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(rule), ":")
		bad := func() (*fault.Plan, error) {
			return nil, fmt.Errorf("bad fault rule %q (see socsim package doc)", rule)
		}
		num := func(s string) (int, bool) { n, err := strconv.Atoi(s); return n, err == nil }
		switch parts[0] {
		case "corrupt":
			if len(parts) != 3 {
				return bad()
			}
			occ, ok := num(parts[2])
			if !ok {
				return bad()
			}
			plan.CorruptStage(parts[1], occ)
		case "stall":
			if len(parts) != 4 {
				return bad()
			}
			occ, ok1 := num(parts[1])
			at, ok2 := num(parts[2])
			ms, ok3 := num(parts[3])
			if !ok1 || !ok2 || !ok3 {
				return bad()
			}
			plan.StallDMA(prDMAName, occ, at, uint64(ms)*1_000_000_000)
		case "abort":
			if len(parts) != 3 {
				return bad()
			}
			occ, ok1 := num(parts[1])
			at, ok2 := num(parts[2])
			if !ok1 || !ok2 {
				return bad()
			}
			plan.AbortDMA(prDMAName, occ, at)
		case "irq":
			if len(parts) != 2 {
				return bad()
			}
			occ, ok := num(parts[1])
			if !ok {
				return bad()
			}
			plan.DropIRQ(soc.IRQPRDone, occ)
		case "bank":
			if len(parts) != 2 {
				return bad()
			}
			occ, ok := num(parts[1])
			if !ok {
				return bad()
			}
			plan.FailBankSelect(occ)
		case "chaos":
			if len(parts) != 3 {
				return bad()
			}
			site, ok := map[string]fault.Site{
				"stage":     fault.SiteStageCorrupt,
				"dma-stall": fault.SiteDMAStall,
				"dma-abort": fault.SiteDMAAbort,
				"irq":       fault.SiteIRQDrop,
				"bank":      fault.SiteBankSelect,
			}[parts[1]]
			if !ok {
				return bad()
			}
			prob, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return bad()
			}
			plan.Chaos(site, prob)
		default:
			return bad()
		}
	}
	return plan, nil
}

// writeTo streams fn's output to the named file, or to stdout for "-".
func writeTo(path string, fn func(w io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	fmt.Printf("telemetry written to %s\n", path)
	return f.Close()
}
