// Command advdetlint runs the repository's static-analysis suite —
// the machine-checked hardware datapath contract. It loads every
// package of the module from source (test files included), applies
// the analyzers from internal/lint and exits nonzero on findings:
//
//	go run ./cmd/advdetlint ./...               # whole module
//	go run ./cmd/advdetlint ./internal/fixed    # one package
//	go run ./cmd/advdetlint -enable fixedops,nofloat ./...
//	go run ./cmd/advdetlint -json ./... | jq .
//
// Exit codes: 0 clean, 1 findings, 2 load or usage error.
//
// The analyzers and their annotation syntax (lint:datapath,
// lint:allowfloat, lint:invariant) are documented in internal/lint
// and in DESIGN.md's "Static analysis & datapath invariants".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"advdet/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		enable  = flag.String("enable", "all", "comma-separated analyzers to run (fixedops,nofloat,panicfree,seededrand) or \"all\"")
		noTests = flag.Bool("notests", false, "skip _test.go files and _test packages")
		list    = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByName(*enable)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := lint.Load(lint.Config{Root: root, Tests: !*noTests}, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	diags := lint.RunAnalyzers(pkgs, analyzers)
	// Report paths relative to the module root for stable output.
	for i, d := range diags {
		if rel, err := filepath.Rel(root, d.File); err == nil {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "advdetlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("advdetlint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
