// Command advdetlint runs the repository's static-analysis suite —
// the machine-checked hardware datapath, determinism, and concurrency
// contracts. It loads every package of the module from source (test
// files included), applies the analyzers from internal/lint and exits
// nonzero on findings:
//
//	go run ./cmd/advdetlint ./...               # whole module
//	go run ./cmd/advdetlint ./internal/fixed    # one package
//	go run ./cmd/advdetlint -enable fixedops,nofloat ./...
//	go run ./cmd/advdetlint -json ./... | jq .
//	go run ./cmd/advdetlint -facts ./...        # dump call-graph facts
//	go run ./cmd/advdetlint -baseline lint.json ./...
//
// -baseline writes the current findings to the named file when it
// does not exist (exit 0), and otherwise compares against it: findings
// recorded in the baseline are grandfathered (tracked on stderr),
// while new findings are reported as usual and fail the run. Baseline
// entries that no longer fire are reported as fixed so the file can be
// re-tightened.
//
// Exit codes: 0 clean (or only grandfathered findings), 1 new
// findings, 2 load or usage error. With -json the findings array is
// always written to stdout before the exit code is decided.
//
// The analyzers and their annotation syntax (the package directives
// datapath/detpath/simtime and the site annotations hotpath, alloc,
// ctxroot, goroutine, unordered, walltime, allowfloat, invariant, all
// written as "lint:" comments) are documented in internal/lint and in
// DESIGN.md §12 "Dataflow-aware contract analyzers".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"advdet/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("advdetlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON array")
		enable   = fs.String("enable", "all", "comma-separated analyzers to run or \"all\"")
		noTests  = fs.Bool("notests", false, "skip _test.go files and _test packages")
		list     = fs.Bool("list", false, "list the analyzers and exit")
		facts    = fs.Bool("facts", false, "dump the call-graph facts analyzers published to stderr")
		baseline = fs.String("baseline", "", "JSON findings baseline: write when absent, compare when present")
		rootFlag = fs.String("root", "", "module root to analyze (default: walk up to go.mod)")
		module   = fs.String("module", "", "module path override for -root trees without a go.mod")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByName(*enable)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	root := *rootFlag
	if root == "" {
		root, err = moduleRoot()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	pkgs, err := lint.Load(lint.Config{Root: root, ModulePath: *module, Tests: !*noTests}, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	prog := lint.NewProgram(pkgs)
	diags := lint.RunProgram(prog, analyzers)
	// Report paths relative to the module root for stable output.
	for i, d := range diags {
		if rel, err := filepath.Rel(root, d.File); err == nil {
			diags[i].File = rel
		}
	}

	if *facts {
		for _, f := range prog.AllFacts() {
			fmt.Fprintf(stderr, "fact: %s\t[%s]\t%s\n", f.Fn, f.Analyzer, f.Text)
		}
	}

	grandfathered := 0
	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if os.IsNotExist(err) {
			if err := writeBaseline(*baseline, diags); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			fmt.Fprintf(stderr, "advdetlint: wrote baseline %s with %d finding(s)\n", *baseline, len(diags))
			return 0
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		var fixed int
		diags, grandfathered, fixed = applyBaseline(diags, base)
		if grandfathered > 0 || fixed > 0 {
			fmt.Fprintf(stderr, "advdetlint: %d grandfathered finding(s), %d baseline entr(ies) no longer fire\n", grandfathered, fixed)
		}
	}

	// The findings array is always emitted — exit-code handling comes
	// strictly after output, so `-json` piped to a consumer sees the
	// findings that caused the nonzero exit.
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "advdetlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// baselineKey identifies a finding across runs: line numbers churn on
// unrelated edits, so the key is analyzer + file + message.
type baselineKey struct {
	Analyzer, File, Message string
}

func readBaseline(path string) ([]lint.Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base []lint.Diagnostic
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("advdetlint: baseline %s: %w", path, err)
	}
	return base, nil
}

func writeBaseline(path string, diags []lint.Diagnostic) error {
	if diags == nil {
		diags = []lint.Diagnostic{}
	}
	data, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// applyBaseline filters diags against the baseline: each baseline
// entry grandfathers up to its recorded count of identical findings.
// It returns the new findings, the grandfathered count, and the count
// of baseline entries that no longer fire.
func applyBaseline(diags, base []lint.Diagnostic) (news []lint.Diagnostic, grandfathered, fixed int) {
	budget := map[baselineKey]int{}
	for _, d := range base {
		budget[baselineKey{d.Analyzer, d.File, d.Message}]++
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, d.File, d.Message}
		if budget[k] > 0 {
			budget[k]--
			grandfathered++
			continue
		}
		news = append(news, d)
	}
	for _, left := range budget {
		fixed += left
	}
	return news, grandfathered, fixed
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("advdetlint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
