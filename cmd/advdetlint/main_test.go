package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"advdet/internal/lint"
)

// golden points the driver at internal/lint's golden tree, which has
// known findings, so driver behavior is testable hermetically.
func golden(extra ...string) []string {
	args := []string{
		"-root", filepath.Join("..", "..", "internal", "lint", "testdata", "src", "advdet"),
		"-module", "advdet",
	}
	return append(args, extra...)
}

// TestJSONEmittedOnFindings pins the exit-path contract: when findings
// exist, -json still writes the full array to stdout before the
// nonzero exit code is returned.
func TestJSONEmittedOnFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(golden("-json", "-enable", "seededrand", "./seededrand"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON findings array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON findings array is empty despite exit 1")
	}
}

// TestJSONEmptyArrayOnClean pins that a clean run still emits valid
// JSON (an empty array, not null or nothing).
func TestJSONEmptyArrayOnClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(golden("-json", "-enable", "seededrand", "./callgraph"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

// TestBaselineRoundTrip pins the grandfathering workflow: the first
// run writes the baseline and exits 0; the second run finds only
// grandfathered findings and also exits 0.
func TestBaselineRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	var stdout, stderr bytes.Buffer
	code := run(golden("-baseline", base, "-enable", "seededrand", "./seededrand"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("baseline write exit = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "wrote baseline") {
		t.Fatalf("stderr missing write notice: %s", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = run(golden("-baseline", base, "-enable", "seededrand", "./seededrand"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("grandfathered exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "grandfathered") {
		t.Fatalf("stderr missing grandfather count: %s", stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "" {
		t.Fatalf("grandfathered findings leaked to stdout: %s", got)
	}
}

// TestBaselineNewViolationFails pins that findings not recorded in the
// baseline still fail the run.
func TestBaselineNewViolationFails(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	var stdout, stderr bytes.Buffer
	// Baseline captures only the ./seededrand findings.
	if code := run(golden("-baseline", base, "-enable", "seededrand", "./seededrand"), &stdout, &stderr); code != 0 {
		t.Fatalf("baseline write exit = %d (stderr: %s)", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	// Widening the run to an analyzer with unbaselined findings must fail.
	code := run(golden("-baseline", base, "-enable", "seededrand,detorder", "./seededrand", "./detorder"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("new-violation exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "detorder") {
		t.Fatalf("new findings not reported: %s", stdout.String())
	}
	if strings.Contains(stdout.String(), "seededrand]") {
		t.Fatalf("grandfathered seededrand findings reported as new: %s", stdout.String())
	}
}

// TestFactsDump pins the -facts debug output: hotpathalloc publishes
// reachability facts for the golden hot-path tree.
func TestFactsDump(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(golden("-facts", "-enable", "ctxflow", "./ctxflow"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "fact: ") || !strings.Contains(stderr.String(), "ctx-aware") {
		t.Fatalf("-facts dump missing ctx-aware facts: %s", stderr.String())
	}
}

// TestListNamesNineAnalyzers keeps the -list output in sync with the
// registry.
func TestListNamesNineAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != len(lint.All()) {
		t.Fatalf("-list printed %d analyzers, registry has %d", len(lines), len(lint.All()))
	}
}
