// Command ledgerverify exercises the tamper-evident detection ledger
// end to end: it records a fault-injected multi-stream drive into a
// ledger, serializes it, reads it back, and verifies everything an
// auditor could check offline —
//
//   - the per-stream hash chains (every event's canonical bytes, in
//     order),
//   - every sealed batch's Merkle root and the anchor chain over the
//     roots,
//   - a sample of inclusion proofs, recomputed from the raw payloads,
//   - and a deterministic replay of the same drive, whose chain heads
//     must match the recording bit for bit.
//
// With -tamper it additionally flips one byte of one recorded event
// and demonstrates that verification pinpoints the tampered record and
// its batch. Exit status is 0 only if every check lands.
//
// Usage:
//
//	ledgerverify [-streams n] [-frames n] [-fps n] [-out file]
//	             [-sample n] [-seed n] [-tamper] [-keep]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"

	"advdet"
	"advdet/internal/ledger"
	"advdet/internal/pipeline"
	"advdet/internal/svm"
)

func main() {
	log.SetFlags(0)
	streams := flag.Int("streams", 3, "concurrent camera streams")
	frames := flag.Int("frames", 120, "frames per stream")
	fps := flag.Int("fps", 50, "camera frame rate")
	out := flag.String("out", "", "record the ledger to this file (default: a temp file)")
	sample := flag.Int("sample", 8, "inclusion proofs to sample and verify")
	seed := flag.Uint64("seed", 7, "seed for the fault plans and proof sampling")
	tamper := flag.Bool("tamper", false, "flip one recorded byte and require verification to pinpoint it")
	keep := flag.Bool("keep", false, "keep the recorded file")
	flag.Parse()

	path := *out
	if path == "" {
		f, err := os.CreateTemp("", "advdet-ledger-*.bin")
		if err != nil {
			log.Fatal(err)
		}
		path = f.Name()
		f.Close()
	}
	if !*keep && *out == "" {
		defer os.Remove(path)
	}

	// Record: drive the fleet with faults injected, every stream
	// chained into the engine-level ledger.
	led, heads := drive(*streams, *frames, *fps, *seed)
	led.SealOpen()
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	n, err := led.WriteTo(f)
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		log.Fatal(err)
	}
	nEvents, nBatches := led.Counts()
	fmt.Printf("recorded: %d streams, %d events, %d batches, %d bytes -> %s\n",
		*streams, nEvents, nBatches, n, path)

	// Read back and verify every hash layer from the raw bytes.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	lg, err := ledger.ReadLog(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	rep := ledger.VerifyLog(lg)
	fmt.Printf("verify: %d events, %d batches, %d chains: ok=%v\n",
		rep.Events, rep.Batches, rep.Streams, rep.OK)
	if !rep.OK {
		log.Fatalf("ledger verification failed: badBatch=%d badStream=%d badSeq=%d err=%v",
			rep.BadBatch, rep.BadStream, rep.BadSeq, rep.Err)
	}

	// Sampled inclusion proofs, recomputed from payloads.
	rng := xorshift(*seed | 1)
	verified := 0
	for i := 0; i < *sample && len(lg.Batches) > 0; i++ {
		bi := int(rng() % uint64(len(lg.Batches)))
		li := int(rng() % uint64(len(lg.Batches[bi].Leaves)))
		proof, err := lg.Prove(bi, li)
		if err != nil {
			log.Fatal(err)
		}
		if !proof.Verify(lg.Batches[bi].Root) {
			log.Fatalf("inclusion proof failed: batch %d leaf %d", bi, li)
		}
		verified++
	}
	fmt.Printf("inclusion proofs: %d/%d sampled proofs verify\n", verified, *sample)

	// Replay the identical drive and require identical chain heads:
	// the recording commits to exactly what a rerun produces.
	_, replayHeads := drive(*streams, *frames, *fps, *seed)
	for i := range lg.Streams {
		sl := &lg.Streams[i]
		h, ok := replayHeads[sl.Stream]
		if !ok || h != sl.Head {
			log.Fatalf("replay: stream %d chain head does not match the recording", sl.Stream)
		}
	}
	if len(heads) != len(lg.Streams) || len(replayHeads) != len(lg.Streams) {
		log.Fatalf("replay: %d recorded chains, %d live, %d replayed",
			len(lg.Streams), len(heads), len(replayHeads))
	}
	fmt.Printf("replay: %d stream chain heads match the recording\n", len(lg.Streams))

	if *tamper {
		// Flip one byte of one sealed event and require the verifier
		// to pinpoint its batch.
		tb := int(rng() % uint64(len(lg.Batches)))
		ref := lg.Batches[tb].Leaves[int(rng()%uint64(len(lg.Batches[tb].Leaves)))]
		for i := range lg.Streams {
			if lg.Streams[i].Stream == ref.Stream {
				p := lg.Streams[i].Payloads[ref.Seq]
				p[int(rng()%uint64(len(p)))] ^= 0x40
			}
		}
		trep := ledger.VerifyLog(lg)
		if trep.OK || trep.BadBatch != tb || trep.BadStream != ref.Stream || trep.BadSeq != int64(ref.Seq) {
			log.Fatalf("tamper NOT pinpointed: flipped stream=%d seq=%d (batch %d), report ok=%v badBatch=%d badStream=%d badSeq=%d",
				ref.Stream, ref.Seq, tb, trep.OK, trep.BadBatch, trep.BadStream, trep.BadSeq)
		}
		fmt.Printf("tamper: flipped one byte of stream %d event %d; verification pinpointed batch %d, record (%d,%d)\n",
			ref.Stream, ref.Seq, trep.BadBatch, trep.BadStream, trep.BadSeq)
	}
	fmt.Println("ledger verified end to end")
}

// drive runs the fault-injected multi-stream scenario: each stream
// crosses day -> dusk -> dark -> day (a free model switch plus two
// real reconfigurations), with a corrupted dark bitstream on every
// stream and a dropped PR-done IRQ on the even ones. Streams run
// concurrently through the engine's dispatcher; their chains are
// independent, so the recording is deterministic per stream no matter
// how execution interleaves.
func drive(streams, frames, fps int, seed uint64) (*advdet.Ledger, map[int32]ledger.Hash) {
	dets := advdet.Detectors{
		Day:  pipeline.NewDayDuskDetector(&svm.Model{W: make([]float64, 1)}),
		Dusk: pipeline.NewDayDuskDetector(&svm.Model{W: make([]float64, 1)}),
	}
	eng := advdet.NewEngine(dets)
	defer eng.Close()

	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		plan := advdet.NewFaultPlan(seed+uint64(i)).CorruptStage("dark", 1)
		if i%2 == 0 {
			plan.DropIRQ(advdet.IRQPRDone, 1)
		}
		cam, err := eng.NewStream(
			advdet.WithStreamTimingOnly(),
			advdet.WithStreamFPS(fps),
			advdet.WithStreamFaultPlan(plan),
			advdet.WithStreamLedger(),
		)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runStream(cam, frames, uint64(id))
		}(i)
	}
	wg.Wait()
	led := eng.Ledger()
	heads := make(map[int32]ledger.Hash)
	for _, id := range led.Streams() {
		h, _ := led.ChainHead(id)
		heads[id] = h
	}
	return led, heads
}

func runStream(cam *advdet.Stream, frames int, seed uint64) {
	ctx := context.Background()
	seg := frames / 4
	for i := 0; i < frames; i++ {
		var cond advdet.Condition
		var lux float64
		switch {
		case i < seg:
			cond, lux = advdet.Day, 10000
		case i < 2*seg:
			cond, lux = advdet.Dusk, 300
		case i < 3*seg:
			cond, lux = advdet.Dark, 5
		default:
			cond, lux = advdet.Day, 10000
		}
		sc := advdet.RenderScene(seed+uint64(i), 64, 36, cond)
		sc.Lux = lux
		if _, err := cam.Process(ctx, sc); err != nil {
			log.Fatal(err)
		}
	}
}

// xorshift returns a deterministic pseudo-random source for proof
// sampling (the repo bans ambient math/rand).
func xorshift(s uint64) func() uint64 {
	if s == 0 {
		s = 1
	}
	return func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
}
