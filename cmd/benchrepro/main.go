// Command benchrepro regenerates every table and figure of the
// paper's evaluation and prints the measured rows next to the
// published ones.
//
// Usage:
//
//	benchrepro [-table1] [-table2] [-reconfig] [-dark] [-fps] [-fleet]
//	           [-all] [-quick] [-json file] [-uhd]
//
// With no selection flags, -all is assumed. -quick shrinks the
// Table I datasets (for CI-speed runs). -json runs the timing-mode
// performance benchmark plus the fleet capacity experiment (fast, no
// training) and writes the schema-stable advdet-bench/v1 report
// (e.g. BENCH_pr10.json) to the given file; combine with other flags
// to also run those sections. -uhd additionally measures the temporal
// scan cache at 3840x2160 for the report's uhd row. -fleet runs the
// multi-stream capacity experiment alone, with
// -fleet-streams/-fleet-frames to scale it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"advdet/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrepro: ")

	t1 := flag.Bool("table1", false, "reproduce Table I (model x test accuracy)")
	t2 := flag.Bool("table2", false, "reproduce Table II (resource utilization)")
	rc := flag.Bool("reconfig", false, "reproduce §IV-A reconfiguration throughputs and §IV-B latency")
	dk := flag.Bool("dark", false, "reproduce §III-B dark-pipeline accuracy")
	fp := flag.Bool("fps", false, "reproduce §V frame rate")
	bl := flag.Bool("baselines", false, "run related-work baselines (Haar/AdaBoost, PIHOG, tracking)")
	sw := flag.Bool("sweep", false, "luminance-threshold sensitivity sweep for the dark pipeline")
	av := flag.Bool("adaptive", false, "system-level adaptive vs fixed-pipeline comparison")
	fl := flag.Bool("fleet", false, "fleet capacity: N concurrent streams over one shared engine")
	flStreams := flag.Int("fleet-streams", 0, "fleet experiment stream count (default 8)")
	flFrames := flag.Int("fleet-frames", 0, "fleet experiment frames per stream (default 30)")
	all := flag.Bool("all", false, "run everything")
	quick := flag.Bool("quick", false, "smaller Table I datasets")
	repeats := flag.Int("repeats", 1, "measurement repeats per reconfiguration controller")
	jsonOut := flag.String("json", "", "write the machine-readable advdet-bench/v1 performance report (e.g. BENCH_pr10.json) to this file")
	uhd := flag.Bool("uhd", false, "with -json, add the 3840x2160 temporal-cache cold/warm row (slow: UHD frames)")
	flag.Parse()

	if !(*t1 || *t2 || *rc || *dk || *fp || *bl || *sw || *av || *fl || *jsonOut != "") {
		*all = true
	}

	if *jsonOut != "" {
		rep, err := experiments.PerfBench()
		if err != nil {
			log.Fatal(err)
		}
		if *uhd {
			u, err := experiments.TemporalBench(3840, 2160, 4)
			if err != nil {
				log.Fatal(err)
			}
			rep.UHD = &u
		}
		experiments.WritePerf(os.Stdout, rep)
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WritePerfJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("performance report written to %s\n\n", *jsonOut)
	}

	if *all || *t1 {
		opt := experiments.DefaultTableIOptions()
		if *quick {
			opt.TrainN = 100
			opt.PaperCounts = false
		}
		fmt.Printf("training 3 SVM models on %d crops/class and evaluating...\n", opt.TrainN)
		rows, err := experiments.TableI(opt)
		if err != nil {
			log.Fatal(err)
		}
		experiments.WriteTableI(os.Stdout, rows)
		if errs := experiments.TableIShapeErrors(rows); len(errs) > 0 {
			fmt.Println("  SHAPE VIOLATIONS:")
			for _, e := range errs {
				fmt.Println("   -", e)
			}
		} else {
			fmt.Println("  all Table I qualitative claims hold.")
		}
		fmt.Println()
	}

	if *all || *t2 {
		experiments.WriteTableII(os.Stdout)
		fmt.Println()
	}

	if *all || *rc {
		results, err := experiments.ReconfigComparison(*repeats)
		if err != nil {
			log.Fatal(err)
		}
		experiments.WriteReconfig(os.Stdout, results)
		ms, dropped, err := experiments.TransitionCost()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("§IV-B — dusk->dark transition: reconfiguration %.2f ms, "+
			"%d vehicle frame(s) dropped at 50 fps (paper: 20 ms, 1 frame)\n\n", ms, dropped)
	}

	if *all || *dk {
		n := 100
		if *quick {
			n = 30
		}
		fmt.Printf("training the dark pipeline and evaluating on %d+%d very dark crops...\n", n, n)
		c, err := experiments.DarkAccuracy(21, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("§III-B — dark pipeline on very dark subset: %s (paper: 95%% accuracy)\n\n", c)
	}

	if *all || *fp {
		fmt.Printf("§V — modeled detection pipeline at 125 MHz, 1920x1080: %.1f fps (paper: 50 fps)\n\n",
			experiments.FrameRate())
	}

	// The fleet section reruns the experiment only when -json didn't
	// already include it or the caller rescaled it.
	if (*all || *fl) && (*jsonOut == "" || *flStreams > 0 || *flFrames > 0) {
		opt := experiments.DefaultFleetOptions()
		if *flStreams > 0 {
			opt.Streams = *flStreams
		}
		if *flFrames > 0 {
			opt.FramesPerStream = *flFrames
		}
		rep, err := experiments.FleetBench(opt)
		if err != nil {
			log.Fatal(err)
		}
		experiments.WriteFleet(os.Stdout, rep)
		fmt.Println()
	}

	if *all || *bl {
		fmt.Println("related-work baselines:")
		dbnC, haarC, err := experiments.BaselineDark(41, 40)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  dark detection:   DBN pipeline %s\n", dbnC)
		fmt.Printf("                    Haar+AdaBoost baseline [11] %s\n", haarC)
		hogC, piC, err := experiments.FeatureComparison(43, 80, 60)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  dusk features:    HOG %s\n", hogC)
		fmt.Printf("                    PIHOG [8] %s\n", piC)
		detR, trkR, err := experiments.TrackingGain(45, 40)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  night drive:      per-frame detector recall %.1f%%, with tracking %.1f%%\n",
			100*detR, 100*trkR)
		fmt.Println()
	}

	if *all || *sw {
		fmt.Println("dark-pipeline luminance-threshold sweep (accuracy vs threshold):")
		points, err := experiments.LumaThreshSweep(47, 25,
			[]uint8{40, 60, 80, 90, 110, 140, 180, 220})
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range points {
			bar := ""
			for i := 0; i < int(p.Acc.Accuracy()*40); i++ {
				bar += "#"
			}
			fmt.Printf("  thresh %3.0f: %6.2f%%  %s\n", p.Param, 100*p.Acc.Accuracy(), bar)
		}
		fmt.Println()
	}

	if *all || *av {
		fmt.Println("training detectors for the adaptive-vs-fixed comparison...")
		rows, err := experiments.AdaptiveVsFixed(61, 8)
		if err != nil {
			log.Fatal(err)
		}
		experiments.WriteAdaptiveVsFixed(os.Stdout, rows)
	}
}
