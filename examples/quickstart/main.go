// Quickstart: train the detectors once, boot a shared Engine over
// them, open one Stream per lighting condition and print what each
// found. The Engine owns everything shared (trained models, scan
// lanes, the frame dispatcher); each Stream owns its per-camera
// adaptive state, so the three conditions coexist on one engine.
package main

import (
	"context"
	"fmt"
	"log"

	"advdet"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training detectors (Fast quality, fully synthetic data)...")
	dets, err := advdet.TrainDetectors(1, advdet.Fast)
	if err != nil {
		log.Fatal(err)
	}

	// One engine: the models are trained once and shared read-only by
	// every stream, like the paper's single PL fabric serving each
	// frame slot.
	eng := advdet.NewEngine(dets)
	defer eng.Close()
	ctx := context.Background()

	for _, cond := range []advdet.Condition{advdet.Day, advdet.Dusk, advdet.Dark} {
		// Each condition gets its own stream, booted into that
		// condition so no reconfiguration is pending when the frame
		// arrives.
		st, err := eng.NewStream(advdet.WithStreamInitial(cond))
		if err != nil {
			log.Fatal(err)
		}

		scene := advdet.RenderScene(uint64(10+cond), 640, 360, cond)
		res, err := st.Process(ctx, scene)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n%s frame (sensor %.0f lux, config %s):\n", cond, scene.Lux, st.Loaded())
		fmt.Printf("  ground truth: %d vehicle(s), %d pedestrian(s)\n",
			len(scene.Vehicles), len(scene.Pedestrians))
		fmt.Printf("  detected:     %d vehicle(s), %d pedestrian(s)\n",
			len(res.Vehicles), len(res.Pedestrians))
		for _, d := range res.Vehicles {
			fmt.Printf("    vehicle at %v (score %.2f)\n", d.Box, d.Score)
		}
		m := advdet.MatchBoxes(scene.Vehicles, boxes(res.Vehicles), 0.2)
		fmt.Printf("  vehicle match vs ground truth: %s\n", m)
	}
}

func boxes(dets []advdet.Detection) []advdet.Rect {
	out := make([]advdet.Rect, len(dets))
	for i, d := range dets {
		out[i] = d.Box
	}
	return out
}
