// Quickstart: train the detectors, boot the adaptive system, process
// one frame of each lighting condition and print what was found.
package main

import (
	"fmt"
	"log"

	"advdet"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training detectors (Fast quality, fully synthetic data)...")
	dets, err := advdet.TrainDetectors(1, advdet.Fast)
	if err != nil {
		log.Fatal(err)
	}

	for _, cond := range []advdet.Condition{advdet.Day, advdet.Dusk, advdet.Dark} {
		// Each condition gets its own freshly booted system so no
		// reconfiguration is pending when the frame arrives.
		sys, err := advdet.NewSystem(dets, advdet.WithInitial(cond))
		if err != nil {
			log.Fatal(err)
		}

		scene := advdet.RenderScene(uint64(10+cond), 640, 360, cond)
		res, err := sys.ProcessFrame(scene)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n%s frame (sensor %.0f lux, config %s):\n", cond, scene.Lux, sys.Loaded())
		fmt.Printf("  ground truth: %d vehicle(s), %d pedestrian(s)\n",
			len(scene.Vehicles), len(scene.Pedestrians))
		fmt.Printf("  detected:     %d vehicle(s), %d pedestrian(s)\n",
			len(res.Vehicles), len(res.Pedestrians))
		for _, d := range res.Vehicles {
			fmt.Printf("    vehicle at %v (score %.2f)\n", d.Box, d.Score)
		}
		m := advdet.MatchBoxes(scene.Vehicles, boxes(res.Vehicles), 0.2)
		fmt.Printf("  vehicle match vs ground truth: %s\n", m)
	}
}

func boxes(dets []advdet.Detection) []advdet.Rect {
	out := make([]advdet.Rect, len(dets))
	for i, d := range dets {
		out[i] = d.Box
	}
	return out
}
