// Tunnel transit: the paper's motivating drive. The car drives
// through urban daylight, enters a well-lit tunnel (classified dusk —
// a pure model switch, no reconfiguration), re-emerges, passes
// through sunset and ends on an open night road (dark — one partial
// reconfiguration).
//
// The example shows:
//   - the condition monitor tracking the light sensor with hysteresis,
//   - exactly one reconfiguration for the whole drive,
//   - exactly one vehicle frame lost, while the pedestrian pipeline
//     processes every frame of the drive (the static partition is
//     never interrupted).
package main

import (
	"context"
	"fmt"
	"log"

	"advdet"
	"advdet/internal/soc"
	"advdet/internal/synth"
)

func main() {
	log.SetFlags(0)

	const fps = 25 // reduced from 50 to halve render cost; timing scales
	scenario := advdet.TunnelTransit(3, 320, 180, fps)

	fmt.Println("training detectors...")
	dets, err := advdet.TrainDetectors(7, advdet.Fast)
	if err != nil {
		log.Fatal(err)
	}

	eng := advdet.NewEngine(dets)
	defer eng.Close()
	sys, err := eng.NewStream(advdet.WithStreamFPS(fps), advdet.WithStreamMetrics())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Printf("drive: %d frames at %d fps (%.0f s of driving)\n\n",
		scenario.TotalFrames(), fps, float64(scenario.TotalFrames())/float64(fps))

	lastLabel := ""
	var vehDet, pedDet int
	for i := 0; i < scenario.TotalFrames(); i++ {
		sc := scenario.FrameAt(i)
		res, err := sys.Process(ctx, sc)
		if err != nil {
			log.Fatal(err)
		}
		if _, label := scenario.CondAt(i); label != lastLabel {
			fmt.Printf("t=%5.1fs  segment %q (sensor ~%.0f lux, condition %s, config %s)\n",
				float64(i)/fps, label, sc.Lux, res.Cond, sys.Loaded())
			lastLabel = label
		}
		if res.ReconfigStarted {
			fmt.Printf("t=%5.1fs  >>> partial reconfiguration started\n", float64(i)/fps)
		}
		if res.VehicleDropped {
			fmt.Printf("t=%5.1fs  >>> vehicle frame dropped (pedestrian path unaffected)\n", float64(i)/fps)
		}
		vehDet += len(res.Vehicles)
		pedDet += len(res.Pedestrians)
	}

	st := sys.Stats()
	fmt.Printf("\nsummary over %d frames:\n", st.Frames)
	fmt.Printf("  vehicle detections:      %d\n", vehDet)
	fmt.Printf("  pedestrian detections:   %d\n", pedDet)
	fmt.Printf("  pedestrian frames run:   %d (100%% — static partition)\n", st.PedestrianFrames)
	fmt.Printf("  vehicle frames dropped:  %d\n", st.VehicleDropped)
	fmt.Printf("  reconfigurations:        %d\n", len(st.Reconfigs))
	for _, r := range st.Reconfigs {
		fmt.Printf("    frame %d: %s -> %s in %.2f ms\n",
			r.Frame, r.From, r.To, soc.Seconds(r.DonePS-r.StartPS)*1e3)
	}
	if n := len(st.Reconfigs); n == 1 && st.Reconfigs[0].To.String() == "dark" {
		fmt.Println("  -> as in the paper: the lit tunnel is handled as dusk with no")
		fmt.Println("     reconfiguration; only true darkness swaps the bitstream.")
	}

	// The telemetry layer (WithMetrics) accounts every frame against
	// its slot deadline — the software analogue of watching the ARM
	// event counters during a drive.
	snap := sys.Snapshot()
	fmt.Printf("\nframe budget (telemetry snapshot):\n")
	fmt.Printf("  deadline hits/misses:    %d / %d\n",
		snap.Frames.DeadlineHits, snap.Frames.DeadlineMisses)
	fmt.Printf("  hw latency p50/p99:      %.3f / %.3f ms of the %.0f ms slot\n",
		float64(snap.Frames.LatencyP50PS)/1e9, float64(snap.Frames.LatencyP99PS)/1e9, 1000/float64(fps))
	if rc, ok := snap.StageByName("reconfig"); ok && rc.Count > 0 {
		fmt.Printf("  reconfig stage:          %d run(s), %.2f ms total\n",
			rc.Count, float64(rc.SimPSTotal)/1e9)
	}
	_ = synth.Dark
}
