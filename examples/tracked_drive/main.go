// Tracked drive: the adaptive system with the Kalman/Hungarian
// tracking layer on a temporally coherent night drive. The key
// property on display: when the dusk->dark transition drops one
// vehicle-detection frame (partial reconfiguration), the confirmed
// tracks coast through the gap on their motion models, so downstream
// consumers (planning, warning) never see the object disappear.
package main

import (
	"context"
	"fmt"
	"log"

	"advdet"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training detectors...")
	dets, err := advdet.TrainDetectors(21, advdet.Fast)
	if err != nil {
		log.Fatal(err)
	}

	eng := advdet.NewEngine(dets)
	defer eng.Close()
	sys, err := eng.NewStream(
		advdet.WithStreamInitial(advdet.Dusk),
		advdet.WithStreamTracking())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// A coherent drive that goes dark mid-way: frames 0-19 dusk,
	// 20+ dark. Both halves share the same seed so actor trajectories
	// line up at the boundary.
	duskDrive := advdet.NewDrive(31, 640, 360, advdet.Dusk, 2, 0)
	darkDrive := advdet.NewDrive(31, 640, 360, advdet.Dark, 2, 0)

	const frames = 40
	ids := map[int]int{} // track ID -> frames observed
	for i := 0; i < frames; i++ {
		var sc *advdet.Scene
		if i < 20 {
			sc = duskDrive.Frame(i)
		} else {
			sc = darkDrive.Frame(i)
		}
		res, err := sys.Process(ctx, sc)
		if err != nil {
			log.Fatal(err)
		}
		for _, tr := range res.Tracks {
			ids[tr.ID]++
		}
		status := ""
		if res.ReconfigStarted {
			status = "  << reconfiguration starts"
		}
		if res.VehicleDropped {
			status += "  << vehicle frame dropped; tracks coast"
		}
		fmt.Printf("frame %2d (%4s): %d detection(s), %d confirmed track(s)%s\n",
			i, res.Cond, len(res.Vehicles), len(res.Tracks), status)
	}

	st := sys.Stats()
	fmt.Printf("\nreconfigurations: %d, vehicle frames dropped: %d\n",
		len(st.Reconfigs), st.VehicleDropped)
	long := 0
	for id, n := range ids {
		if n >= 10 {
			long++
			fmt.Printf("track %d persisted for %d frames\n", id, n)
		}
	}
	if long > 0 {
		fmt.Println("-> track identities survived the algorithm switch and the dropped frame.")
	}
}
