// Flaky ICAP: the resilience layer under deliberate fire. A night
// drive forces a dusk->dark partial reconfiguration while the fault
// plan corrupts the staged dark bitstream AND drops the first PR-done
// interrupt, with the retry budget squeezed to one.
//
// The example shows:
//   - CRC-verified staging catching the corrupt image before it ever
//     reaches the fabric (ErrVerify), and re-staging from PS DDR,
//   - the simulated-time watchdog abandoning the attempt whose
//     completion interrupt was lost (ErrReconfigTimeout),
//   - bounded exponential backoff between retries,
//   - graceful degradation: pedestrian detection on the static
//     partition never misses a frame, and vehicle detection serves the
//     last-good resident model (stale, but live) instead of dropping,
//   - ModeDegraded only once the retry budget is exhausted, and
//     automatic recovery to ModeNominal on the next clean completion,
//   - the unified typed event stream (WithStreamEventSink) carrying
//     every fault, reconfiguration phase and mode transition — the
//     legacy Stats.FaultLog is a derived view of the same stream,
//   - the tamper-evident ledger (WithStreamLedger): the whole drive
//     hash-chained and Merkle-batched, with an inclusion proof checked
//     at the end.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"advdet"
)

func main() {
	log.SetFlags(0)

	plan := advdet.NewFaultPlan(42).
		CorruptStage("dark", 1).     // boot staging of the dark bitstream
		DropIRQ(advdet.IRQPRDone, 1) // first reconfiguration completion
	eng := advdet.NewEngine(advdet.Detectors{})
	defer eng.Close()
	events := advdet.NewEventLog()
	sys, err := eng.NewStream(
		advdet.WithStreamTimingOnly(),
		advdet.WithStreamInitial(advdet.Dusk),
		advdet.WithStreamMetrics(),
		advdet.WithStreamFaultPlan(plan),
		advdet.WithStreamRetryPolicy(advdet.RetryPolicy{MaxRetries: 1}),
		advdet.WithStreamEventSink(events),
		advdet.WithStreamLedger(),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("drive: 5 dusk frames, then darkness with a corrupt bitstream and a lost interrupt")
	fmt.Println()

	mode := advdet.ModeNominal
	drive := func(cond advdet.Condition, lux float64, n int) {
		sc := advdet.RenderScene(3, 64, 36, cond)
		sc.Lux = lux
		for i := 0; i < n; i++ {
			r, err := sys.Process(ctx, sc)
			if err != nil {
				log.Fatal(err)
			}
			tag := ""
			if r.VehicleDropped {
				tag = "  [vehicle dropped: fabric rewriting]"
			}
			if r.VehicleStale {
				tag = "  [vehicle stale: serving last-good model]"
			}
			if r.Mode != mode {
				mode = r.Mode
				fmt.Printf("frame %3d: mode -> %-10s%s\n", r.Index, mode, tag)
			} else if tag != "" {
				fmt.Printf("frame %3d: %-18s%s\n", r.Index, mode, tag)
			}
		}
	}
	drive(advdet.Dusk, 300, 5)
	drive(advdet.Dark, 5, 45)

	st := sys.Stats()
	fmt.Println()
	fmt.Printf("final mode: %s, loaded configuration: %s\n", sys.Mode(), sys.Loaded())
	fmt.Printf("pedestrian frames: %d of %d (the static partition never stops)\n",
		st.PedestrianFrames, st.Frames)
	fmt.Printf("vehicle frames: %d dropped (fabric busy), %d stale (last-good model)\n",
		st.VehicleDropped, st.StaleVehicleFrames)
	fmt.Printf("faults absorbed: %d verify, %d watchdog, %d retries, %d IRQs dropped\n",
		st.VerifyFailures, st.WatchdogTrips, st.Retries, st.IRQsDropped)
	if len(st.Reconfigs) > 0 {
		r := st.Reconfigs[0]
		fmt.Printf("the dusk->dark transition took %d attempts before completing\n", r.Attempts)
	}

	// The typed event stream is the one subscribable surface for all of
	// the above: faults (typed sentinels, errors.Is-dispatchable),
	// reconfiguration phases and mode transitions, in deterministic
	// order. Stats.FaultLog is a derived view of the same stream.
	fmt.Println("\nevent stream (faults, reconfig phases, mode transitions):")
	for _, ev := range events.Events() {
		switch ev.Kind {
		case advdet.EvFault:
			kind := "other"
			switch {
			case errors.Is(ev.Fault.Err, advdet.ErrVerify):
				kind = "ErrVerify"
			case errors.Is(ev.Fault.Err, advdet.ErrReconfigTimeout):
				kind = "ErrReconfigTimeout"
			case errors.Is(ev.Fault.Err, advdet.ErrBankSelect):
				kind = "ErrBankSelect"
			case ev.Fault.Code == advdet.FaultCodeIRQDrop:
				kind = "IRQ drop"
			}
			fmt.Printf("  frame %3d  fault     attempt %d  %-18s %v\n",
				ev.Frame, ev.Fault.Attempt, kind, ev.Fault.Err)
		case advdet.EvReconfig:
			fmt.Printf("  frame %3d  reconfig  %s -> %s (%s, attempt %d)\n",
				ev.Frame, ev.Reconfig.From, ev.Reconfig.To, ev.Reconfig.Phase, ev.Reconfig.Attempt)
		case advdet.EvModeChange:
			fmt.Printf("  frame %3d  mode      %s -> %s\n",
				ev.Frame, ev.ModeChange.From, ev.ModeChange.To)
		}
	}
	if len(events.FaultRecords()) != len(st.FaultLog) {
		log.Fatal("derived FaultLog view out of sync with the event stream")
	}

	snap := sys.Snapshot()
	fmt.Println("\nmetrics snapshot (fault counters):")
	for _, row := range snap.Faults {
		if row.Count > 0 {
			fmt.Printf("  %-20s %d\n", row.Kind, row.Count)
		}
	}

	// Every event above was also hash-chained into the engine's
	// tamper-evident ledger. Seal the tail batch and check an
	// inclusion proof: event 0 of the chain provably belongs to batch
	// 0 under its sealed Merkle root.
	led := eng.Ledger()
	led.SealOpen()
	nEvents, nBatches := led.Counts()
	anchor := led.AnchorHead()
	fmt.Printf("\nledger: %d events in %d sealed batches, anchor %x...\n",
		nEvents, nBatches, anchor[:8])
	proof, err := led.Prove(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	batch, _ := led.Batch(0)
	fmt.Printf("inclusion proof for event 0: %d siblings, verifies: %v\n",
		len(proof.Path), proof.Verify(batch.Root))
}
