// Night highway: the dark pipeline on an iROADS-like all-dark drive.
// Writes Fig. 5-style qualitative results: PPM frames with detected
// vehicles (red), pedestrians (green) and ground truth (yellow), plus
// the intermediate binary taillight map (PGM) of the pipeline's
// preprocessing stages.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"advdet"
	"advdet/internal/img"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "night_out", "output directory for PPM/PGM frames")
	frames := flag.Int("frames", 5, "number of frames to process")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	fmt.Println("training detectors...")
	dets, err := advdet.TrainDetectors(5, advdet.Fast)
	if err != nil {
		log.Fatal(err)
	}

	eng := advdet.NewEngine(dets)
	defer eng.Close()
	sys, err := eng.NewStream(advdet.WithStreamInitial(advdet.Dark))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	scenario := advdet.NightHighway(9, 640, 360, 10)
	var matched, total int
	for i := 0; i < *frames; i++ {
		sc := scenario.FrameAt(i * 7) // spread across the drive
		res, err := sys.Process(ctx, sc)
		if err != nil {
			log.Fatal(err)
		}

		overlay := sc.Frame.Clone()
		for _, gt := range sc.Vehicles {
			img.DrawRect(overlay, gt, 255, 255, 0, 1)
		}
		for _, d := range res.Vehicles {
			img.DrawRect(overlay, d.Box, 255, 60, 60, 2)
		}
		for _, d := range res.Pedestrians {
			img.DrawRect(overlay, d.Box, 60, 255, 60, 2)
		}
		framePath := filepath.Join(*out, fmt.Sprintf("frame_%02d.ppm", i))
		if err := img.WritePPM(framePath, overlay); err != nil {
			log.Fatal(err)
		}

		// Also dump the thresholded taillight map the DBN scans.
		bin := dets.Dark.Preprocess(sc.Frame)
		vis := img.NewGray(bin.W, bin.H)
		for j, p := range bin.Pix {
			vis.Pix[j] = p * 255
		}
		mapPath := filepath.Join(*out, fmt.Sprintf("frame_%02d_taillights.pgm", i))
		if err := img.WritePGM(mapPath, vis); err != nil {
			log.Fatal(err)
		}

		m := advdet.MatchBoxes(sc.Vehicles, detBoxes(res.Vehicles), 0.2)
		matched += m.TP
		total += m.TP + m.FN
		fmt.Printf("frame %d: %d ground-truth vehicle(s), %d detected, match %s -> %s\n",
			i, len(sc.Vehicles), len(res.Vehicles), m, framePath)
	}
	if total > 0 {
		fmt.Printf("\nrecall over the sampled frames: %d/%d\n", matched, total)
	}
	fmt.Printf("wrote overlays and taillight maps to %s/\n", *out)
}

func detBoxes(dets []advdet.Detection) []advdet.Rect {
	out := make([]advdet.Rect, len(dets))
	for i, d := range dets {
		out[i] = d.Box
	}
	return out
}
