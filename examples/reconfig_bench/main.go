// Reconfig bench: the four partial-reconfiguration controllers head
// to head on the paper's 8 MB partial bitstream (§IV-A), plus a sweep
// over bitstream sizes showing where each mechanism's overhead lands.
package main

import (
	"fmt"
	"log"

	"advdet"
	"advdet/internal/fpga"
	"advdet/internal/pr"
	"advdet/internal/soc"
)

func main() {
	log.SetFlags(0)

	bitstream := fpga.DefaultFloorplan().PartialBitstreamBytes()
	fmt.Printf("partial bitstream for the %0.f%%-LUT partition: %.2f MB\n\n",
		fpga.DefaultFloorplan().Region.UtilPercent(fpga.XC7Z100)[0], float64(bitstream)/1e6)

	results, err := advdet.ReconfigThroughputs(bitstream, advdet.WithMeasureRepeats(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %14s %10s %12s\n", "controller", "throughput", "time", "vs 400 MB/s")
	var pcapMBs, oursMBs float64
	for _, res := range results {
		fmt.Printf("%-12s %10.1f MB/s %7.2f ms %11.1f%%\n",
			res.Controller, res.MBPerSec, float64(res.Elapsed.Microseconds())/1e3, 100*res.MBPerSec/400)
		switch res.Controller {
		case "pcap":
			pcapMBs = res.MBPerSec
		case "dma-icap":
			oursMBs = res.MBPerSec
		}
	}
	fmt.Printf("\nspeedup of the DMA-ICAP controller over PCAP: %.2fx (paper: >2.6x)\n", oursMBs/pcapMBs)

	fmt.Println("\nsize sweep (ms to reconfigure):")
	sizes := []int{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}
	fmt.Printf("%-12s", "controller")
	for _, s := range sizes {
		fmt.Printf("%9dMiB", s>>20)
	}
	fmt.Println()
	for _, ctrl := range pr.All() {
		fmt.Printf("%-12s", ctrl.Name())
		for _, s := range sizes {
			res, err := pr.Measure(freshController(ctrl.Name()), s)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%12.2f", soc.Seconds(res.PS)*1e3)
		}
		fmt.Println()
	}

	fmt.Println("\nframe cost at 50 fps: one 20 ms slot per dusk<->dark transition")
	fmt.Println("(the pedestrian pipeline on the static partition keeps running).")
}

// freshController returns a new instance per measurement so the sweep
// never reuses in-flight state.
func freshController(name string) pr.Controller {
	for _, c := range pr.All() {
		if c.Name() == name {
			return c
		}
	}
	panic("unknown controller " + name)
}
