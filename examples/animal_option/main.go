// Animal option: the introduction's motivating example made concrete.
// Animal detection "could be a useful feature for ADS since, in some
// countryside roads, animals might appear and cross the road.
// However, this feature might not be used in most of the times when
// the driving area is limited to urban roads."
//
// This example stages a third partial configuration (animal
// detection) in PL DDR next to the vehicle configurations, verifies it
// fits the floorplanned partition, and swaps it in when the drive
// leaves the urban area — all with the same DMA-ICAP controller and
// the same ~20 ms cost, while pedestrian detection keeps running.
package main

import (
	"fmt"
	"log"

	"advdet/internal/eval"
	"advdet/internal/fpga"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/pipeline"
	"advdet/internal/pr"
	"advdet/internal/soc"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

func main() {
	log.SetFlags(0)

	// 1. The animal configuration must fit the partition floorplanned
	//    for the largest vehicle configuration — no extra fabric.
	fp := fpga.DefaultFloorplan()
	configs := [][]fpga.Module{fpga.DayDuskModules(), fpga.DarkModules(), fpga.AnimalModules()}
	if err := fp.Verify(configs, 1.1); err != nil {
		log.Fatalf("animal configuration does not fit: %v", err)
	}
	animal := fpga.Sum(fpga.AnimalModules())
	u := animal.UtilPercent(fpga.XC7Z100)
	fmt.Printf("animal configuration utilization: %.0f%% LUT / %.0f%% FF / %.0f%% BRAM / %.0f%% DSP\n",
		u[0], u[1], u[2], u[3])
	fmt.Println("fits the existing reconfigurable partition: yes (no extra resources)")

	// 2. Train the animal detector and check it works.
	fmt.Println("\ntraining animal HOG+SVM...")
	train := synth.AnimalDataset(1, pipeline.AnimalWindowW, pipeline.AnimalWindowH, 80, 80, synth.Day)
	model, err := pipeline.TrainAnimalSVM(train, hog.DefaultConfig(), svm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	det := pipeline.NewAnimalDetector(model)
	test := synth.AnimalDataset(2, pipeline.AnimalWindowW, pipeline.AnimalWindowH, 40, 40, synth.Day)
	c := eval.EvaluateCrops(det.ClassifyCrop, test.Pos, test.Neg)
	fmt.Printf("animal crop classification: %s\n", c)

	// 3. Stage all three bitstreams and swap on a drive that leaves
	//    the city.
	z := soc.NewZynq()
	ctrl := pr.NewDMAICAP()
	bits := fp.PartialBitstreamBytes()
	for _, name := range []string{"day-dusk", "dark", "animal"} {
		ctrl.Stage(z, name, bits, nil)
	}
	z.Sim.Run()
	fmt.Printf("\nstaged 3 partial bitstreams of %.1f MB in PL DDR\n", float64(bits)/1e6)

	swap := func(to string) {
		start := z.Sim.Now()
		if err := ctrl.ReconfigureStaged(z, to, func() {
			ms := soc.Seconds(z.Sim.Now()-start) * 1e3
			fmt.Printf("  swapped to %-9s in %.2f ms (pedestrian path uninterrupted)\n", to, ms)
		}); err != nil {
			log.Fatal(err)
		}
		z.Sim.Run()
	}
	fmt.Println("drive: urban -> countryside -> urban night")
	swap("animal")   // leaving the city: vehicle slot hosts animal detection
	swap("day-dusk") // back among traffic
	swap("dark")     // night falls

	// 4. Show a countryside detection.
	crop := synth.AnimalCrop(synth.NewRNG(9), 128, 64, synth.Day)
	if det.ClassifyCrop(img.RGBToGray(crop)) {
		fmt.Println("\ncountryside frame: animal detected ahead — braking profile engaged")
	} else {
		fmt.Println("\ncountryside frame: no animal found")
	}
}
