// Multi camera: the fleet-scale API. One Engine — one set of trained
// models, one scan-lane pool, one bounded frame dispatcher — serves
// four concurrent camera streams driving through the same
// day->dusk->dark transit. Each stream keeps its own condition
// monitor, reconfiguration state machine and slot-deadline telemetry.
//
// The example shows:
//   - N streams multiplexed over one engine, processed concurrently,
//   - the determinism contract at fleet scale: every stream's results
//     are identical to a standalone single-stream run,
//   - the capacity rollup: per-stream slot-deadline accounting and the
//     aggregate streams×fps the engine sustained,
//   - the same rollup in Prometheus text exposition format.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"reflect"
	"sync"

	"advdet"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training detectors (Fast quality)...")
	dets, err := advdet.TrainDetectors(11, advdet.Fast)
	if err != nil {
		log.Fatal(err)
	}

	// The drive every camera replays: day -> dusk -> dark and back.
	conds := []advdet.Condition{advdet.Day, advdet.Day, advdet.Dusk, advdet.Dark, advdet.Dark, advdet.Day}
	scenes := make([]*advdet.Scene, len(conds))
	for i, c := range conds {
		scenes[i] = advdet.RenderScene(uint64(500+i), 320, 180, c)
	}

	// Reference: the same drive through a classic standalone System.
	sys, err := advdet.NewSystem(dets)
	if err != nil {
		log.Fatal(err)
	}
	ref := make([]advdet.FrameResult, len(scenes))
	for i, sc := range scenes {
		if ref[i], err = sys.ProcessFrame(sc); err != nil {
			log.Fatal(err)
		}
	}

	// Fleet: four streams on one shared engine, running concurrently.
	const streams = 4
	eng := advdet.NewEngine(dets, advdet.WithQueueDepth(2*streams))
	defer eng.Close()
	ctx := context.Background()

	got := make([][]advdet.FrameResult, streams)
	var wg sync.WaitGroup
	wg.Add(streams)
	for i := 0; i < streams; i++ {
		st, err := eng.NewStream(
			advdet.WithStreamName(fmt.Sprintf("cam-%d", i)),
			advdet.WithStreamMetrics())
		if err != nil {
			log.Fatal(err)
		}
		go func(i int, st *advdet.Stream) {
			defer wg.Done()
			for _, sc := range scenes {
				res, err := st.Process(ctx, sc)
				if err != nil {
					log.Printf("stream %d: %v", i, err)
					return
				}
				got[i] = append(got[i], res)
			}
		}(i, st)
	}
	wg.Wait()

	fmt.Printf("\n%d streams x %d frames through one engine:\n", streams, len(scenes))
	identical := 0
	for i := range got {
		if reflect.DeepEqual(got[i], ref) {
			identical++
		}
	}
	fmt.Printf("  streams byte-identical to the standalone run: %d of %d\n", identical, streams)

	st := eng.FleetStats()
	fmt.Printf("  dispatcher: %d admitted, %d executed, %d batches, %d shed\n",
		st.Admitted, st.Executed, st.Batches, st.Rejected)

	snap := eng.FleetSnapshot()
	fmt.Printf("\ncapacity rollup (%d active streams):\n", snap.ActiveStreams)
	for _, row := range snap.Streams {
		fmt.Printf("  %-8s %d frames, slot deadline %d hit / %d missed -> %.0f fps sustained\n",
			row.Stream, row.Frames, row.DeadlineHits, row.DeadlineMisses, row.CapacityFPS)
	}
	fmt.Printf("  aggregate: %.0f streams x fps\n", snap.CapacityStreamsFPS)

	fmt.Println("\nPrometheus exposition of the same rollup:")
	if err := eng.WriteFleetProm(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
