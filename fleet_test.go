package advdet

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"advdet/internal/fleet"
)

// fleetScenes renders the drive the fleet tests replay on every
// stream: day -> dusk -> dark and back, exercising the model select
// and both reconfiguration directions. Scenes are read-only during
// processing, so concurrent streams share them.
func fleetScenes(t *testing.T) []*Scene {
	t.Helper()
	conds := []Condition{Day, Day, Dusk, Dark, Dark, Day}
	out := make([]*Scene, len(conds))
	for i, c := range conds {
		out[i] = RenderScene(uint64(300+i), 320, 180, c)
	}
	return out
}

// TestFleetDeterminismTable is the acceptance table: the same drive
// through 1 standalone stream vs. 8 concurrent streams on one shared
// Engine yields byte-identical per-stream FrameResults, at engine
// worker counts {1, 2, NumCPU}.
func TestFleetDeterminismTable(t *testing.T) {
	d := getDets(t)
	scenes := fleetScenes(t)
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			// Reference: one standalone single-stream run.
			sys, err := NewSystem(d, WithParallelism(workers))
			if err != nil {
				t.Fatal(err)
			}
			ref := make([]FrameResult, 0, len(scenes))
			for _, sc := range scenes {
				res, err := sys.ProcessFrame(sc)
				if err != nil {
					t.Fatal(err)
				}
				ref = append(ref, res)
			}

			// Fleet: 8 concurrent streams on one shared engine.
			const streams = 8
			eng := NewEngine(d,
				WithEngineParallelism(workers),
				WithQueueDepth(2*streams))
			defer eng.Close()
			got := make([][]FrameResult, streams)
			var wg sync.WaitGroup
			wg.Add(streams)
			for i := 0; i < streams; i++ {
				st, err := eng.NewStream(
					WithStreamName(fmt.Sprintf("cam-%d", i)),
					WithStreamParallelism(workers))
				if err != nil {
					t.Fatal(err)
				}
				go func(i int, st *Stream) {
					defer wg.Done()
					for _, sc := range scenes {
						res, err := st.Process(context.Background(), sc)
						if err != nil {
							t.Errorf("stream %d: %v", i, err)
							return
						}
						got[i] = append(got[i], res)
					}
				}(i, st)
			}
			wg.Wait()
			for i := 0; i < streams; i++ {
				if !reflect.DeepEqual(got[i], ref) {
					t.Fatalf("workers=%d stream %d diverged from the standalone run:\n got %+v\nwant %+v",
						workers, i, got[i], ref)
				}
			}
		})
	}
}

func TestStreamProcessPreCancelledCtxNeverAdmits(t *testing.T) {
	eng := NewEngine(getDets(t))
	defer eng.Close()
	st, err := eng.NewStream(WithStreamTimingOnly())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = st.Process(ctx, RenderScene(310, 320, 180, Day))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pre-cancelled Process took %v; admission must fail fast", elapsed)
	}
	if stats := eng.FleetStats(); stats.Admitted != 0 {
		t.Fatalf("pre-cancelled frame was admitted: %+v", stats)
	}
}

// The sentinels are the internal/fleet identities, so errors wrapped
// at any layer match with errors.Is.
func TestFleetSentinelIdentities(t *testing.T) {
	if !errors.Is(ErrOverloaded, fleet.ErrOverloaded) ||
		!errors.Is(ErrStreamClosed, fleet.ErrStreamClosed) ||
		!errors.Is(ErrEngineClosed, fleet.ErrClosed) {
		t.Fatal("root sentinels are not the fleet identities")
	}
}

func TestStreamCloseAndEngineCloseErrors(t *testing.T) {
	eng := NewEngine(getDets(t))
	st, err := eng.NewStream(WithStreamTimingOnly(), WithStreamMetrics())
	if err != nil {
		t.Fatal(err)
	}
	other, err := eng.NewStream(WithStreamTimingOnly())
	if err != nil {
		t.Fatal(err)
	}
	sc := RenderScene(311, 320, 180, Day)
	if _, err := st.Process(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	if snap := eng.FleetSnapshot(); snap.ActiveStreams != 2 {
		t.Fatalf("active streams %d, want 2", snap.ActiveStreams)
	}
	st.Close()
	st.Close() // idempotent
	if _, err := st.Process(context.Background(), sc); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("closed-stream err = %v, want ErrStreamClosed", err)
	}
	if snap := eng.FleetSnapshot(); snap.ActiveStreams != 1 {
		t.Fatalf("closed stream still active in rollup: %+v", snap)
	}
	// The sibling stream is unaffected by the close.
	if _, err := other.Process(context.Background(), sc); err != nil {
		t.Fatalf("sibling stream after close: %v", err)
	}
	eng.Close()
	if _, err := other.Process(context.Background(), sc); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("closed-engine err = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.NewStream(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("NewStream on closed engine err = %v, want ErrEngineClosed", err)
	}
}

// TestFleetOverloadShedsGracefully drives more concurrent frames than
// the deliberately tiny engine can admit: the excess must fail fast
// with ErrOverloaded (never deadlock), and admitted frames must still
// complete once their submitters' contexts resolve.
func TestFleetOverloadShedsGracefully(t *testing.T) {
	d := getDets(t)
	// One executor, a one-deep queue, and a batcher that can only
	// flush by deadline far in the future: admitted frames pile up
	// behind the batcher and the queue fills immediately.
	eng := NewEngine(d,
		WithFleetWorkers(1),
		WithQueueDepth(1),
		WithBatchPolicy(1000, time.Hour))
	const streams = 6
	ctx, cancel := context.WithCancel(context.Background())
	var overloaded, cancelled, completed int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(streams)
	for i := 0; i < streams; i++ {
		st, err := eng.NewStream(
			WithStreamName(fmt.Sprintf("over-%d", i)),
			WithStreamTimingOnly())
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			defer wg.Done()
			_, err := st.Process(ctx, RenderScene(312, 160, 90, Day))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed++
			case errors.Is(err, ErrOverloaded):
				overloaded++
			case errors.Is(err, context.Canceled):
				cancelled++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	// Overload rejections are immediate; wait for them, then release
	// the stuck admissions by cancelling.
	for deadline := time.Now().Add(5 * time.Second); ; {
		mu.Lock()
		n := overloaded
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	eng.Close() // must not deadlock with abandoned items in the batcher
	if overloaded == 0 {
		t.Fatalf("no frame was shed with ErrOverloaded (completed=%d cancelled=%d)", completed, cancelled)
	}
	if overloaded+cancelled+completed != streams {
		t.Fatalf("accounted for %d of %d frames", overloaded+cancelled+completed, streams)
	}
}

// TestManyStreamSoak runs 32 concurrent timing-only streams over one
// engine — the -race lane's workload. Timing-only streams skip the
// scan path, so this exercises the dispatcher, the per-stream
// simulations and the metrics rollup at fleet scale.
func TestManyStreamSoak(t *testing.T) {
	const streams = 32
	const frames = 25
	d := getDets(t)
	eng := NewEngine(d, WithQueueDepth(2*streams))
	defer eng.Close()
	scenes := fleetScenes(t)
	var wg sync.WaitGroup
	wg.Add(streams)
	for i := 0; i < streams; i++ {
		st, err := eng.NewStream(
			WithStreamName(fmt.Sprintf("soak-%d", i)),
			WithStreamTimingOnly(),
			WithStreamMetrics())
		if err != nil {
			t.Fatal(err)
		}
		go func(i int, st *Stream) {
			defer wg.Done()
			for f := 0; f < frames; f++ {
				if _, err := st.Process(context.Background(), scenes[f%len(scenes)]); err != nil {
					t.Errorf("stream %d frame %d: %v", i, f, err)
					return
				}
			}
		}(i, st)
	}
	wg.Wait()
	stats := eng.FleetStats()
	if stats.Admitted != streams*frames || stats.Executed != streams*frames {
		t.Fatalf("dispatcher stats %+v, want %d admitted+executed", stats, streams*frames)
	}
	if stats.Rejected != 0 {
		t.Fatalf("%d frames rejected despite a queue sized for the fleet", stats.Rejected)
	}
	snap := eng.FleetSnapshot()
	if snap.ActiveStreams != streams {
		t.Fatalf("active streams %d, want %d", snap.ActiveStreams, streams)
	}
	if snap.Frames != streams*frames {
		t.Fatalf("rollup frames %d, want %d", snap.Frames, streams*frames)
	}
	for i := 0; i < streams; i++ {
		row, ok := snap.StreamByName(fmt.Sprintf("soak-%d", i))
		if !ok || row.Frames != frames {
			t.Fatalf("stream %d rollup row %+v ok=%v, want %d frames", i, row, ok, frames)
		}
		if row.DeadlineHits+row.DeadlineMisses != frames {
			t.Fatalf("stream %d deadline accounting %+v does not cover its frames", i, row)
		}
	}
}

// TestStreamRunScenarioMatchesSystem replays a scenario through a
// Stream and through the classic System: same results, and the
// stream's dispatch-stage telemetry records one trip per frame.
func TestStreamRunScenarioMatchesSystem(t *testing.T) {
	d := getDets(t)
	scn := TunnelTransit(7, 160, 90, 10)
	sys, err := NewSystem(d, WithFPS(10), WithTimingOnly())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.RunScenario(scn)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(d)
	defer eng.Close()
	st, err := eng.NewStream(WithStreamFPS(10), WithStreamTimingOnly(), WithStreamMetrics())
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.RunScenario(context.Background(), TunnelTransit(7, 160, 90, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream scenario run diverged from system run")
	}
	snap := st.Snapshot()
	row, ok := snap.StageByName("fleet-dispatch")
	if !ok || row.Count != uint64(len(got)) {
		t.Fatalf("fleet-dispatch stage row %+v ok=%v, want count %d", row, ok, len(got))
	}
}
