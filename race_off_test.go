//go:build !race

package advdet

// raceEnabled reports whether the race detector is active; its
// runtime instrumentation allocates, so alloc-regression tests skip.
const raceEnabled = false
